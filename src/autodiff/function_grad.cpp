#include "autodiff/function_grad.h"

#include <map>
#include <mutex>

#include "api/ops_api.h"
#include "autodiff/gradient_registry.h"
#include "graph/passes.h"
#include "ops/op_registry.h"
#include "runtime/dispatch.h"
#include "runtime/eager_context.h"
#include "staging/trace_context.h"
#include "support/strings.h"

namespace tfe {

namespace {

constexpr char kForwardSuffix[] = "__fwd";

// All value-producing endpoints of non-Arg/non-Const nodes, in node order —
// the canonical "intermediates" list shared by the forward variant and the
// backward builder.
std::vector<Endpoint> IntermediateEndpoints(const GraphFunction& function) {
  std::vector<Endpoint> endpoints;
  const Graph& graph = function.graph();
  for (int id = 0; id < graph.num_nodes(); ++id) {
    const Node& node = graph.node(id);
    if (node.op == "Arg" || node.op == "Const") continue;
    for (int j = 0; j < node.num_outputs(); ++j) {
      endpoints.push_back({id, j});
    }
  }
  return endpoints;
}

// Backward-function cache (grad_arg_indices etc. live outside the library).
struct BackwardCacheEntry {
  BackwardFunction backward;
  std::vector<int> grad_output_indices;  // which original outputs take grads
};
std::mutex g_backward_mu;
std::map<std::string, BackwardCacheEntry>& BackwardCache() {
  static auto* cache = new std::map<std::string, BackwardCacheEntry>();
  return *cache;
}

// When `seed_accumulators` is non-null, the backward gets one extra trailing
// parameter per (arg index, type) entry, pre-seeded into the sweep's gradient
// map at that arg's endpoint — the loop-body accumulator threading described
// in function_grad.h.
StatusOr<BackwardCacheEntry> BuildBackward(
    EagerContext* ctx, const std::shared_ptr<GraphFunction>& forward,
    int num_original_outputs,
    const std::vector<std::pair<int, TypeAndShape>>* seed_accumulators =
        nullptr) {
  const Graph& graph = forward->graph();
  auto backward_fn = std::make_shared<GraphFunction>(ctx->functions().UniqueName(
      forward->name() +
      (seed_accumulators == nullptr ? "__grad" : "__loop_grad")));
  BackwardCacheEntry entry;

  TraceContext trace(backward_fn, ctx);

  // Symbols in the backward graph for every forward endpoint.
  std::vector<std::vector<Tensor>> value_of(graph.num_nodes());
  for (int id = 0; id < graph.num_nodes(); ++id) {
    value_of[id].resize(graph.node(id).num_outputs());
  }

  // Parameters: forward args, then intermediates, then output gradients.
  for (int arg_node : forward->arg_nodes()) {
    const TypeAndShape& type = graph.node(arg_node).outputs[0];
    if (type.dtype == DType::kResource) {
      // Resource parameters of the backward function are placeholders bound
      // at call time to the same handles the forward call received.
      TFE_ASSIGN_OR_RETURN(value_of[arg_node][0],
                           trace.AddParameter(DType::kResource, Shape()));
    } else {
      TFE_ASSIGN_OR_RETURN(value_of[arg_node][0],
                           trace.AddParameter(type.dtype, type.shape));
    }
  }
  std::vector<Endpoint> intermediates = IntermediateEndpoints(*forward);
  for (const Endpoint& e : intermediates) {
    const TypeAndShape& type = graph.endpoint_type(e);
    TFE_ASSIGN_OR_RETURN(value_of[e.node_id][e.index],
                         trace.AddParameter(type.dtype, type.shape));
  }
  // Gradients arrive for the non-resource original outputs only.
  std::map<int, Tensor> output_grads;  // original-output index -> grad param
  for (int r = 0; r < num_original_outputs; ++r) {
    const TypeAndShape& type = graph.endpoint_type(forward->outputs()[r]);
    if (type.dtype == DType::kResource) continue;
    TFE_ASSIGN_OR_RETURN(Tensor param,
                         trace.AddParameter(type.dtype, type.shape));
    output_grads.emplace(r, param);
    entry.grad_output_indices.push_back(r);
  }
  std::vector<std::pair<int, Tensor>> accumulator_params;  // arg idx -> param
  if (seed_accumulators != nullptr) {
    for (const auto& [arg_index, type] : *seed_accumulators) {
      TFE_ASSIGN_OR_RETURN(Tensor param,
                           trace.AddParameter(type.dtype, type.shape));
      accumulator_params.emplace_back(arg_index, param);
    }
  }

  // Constants materialize directly in the backward graph.
  for (int id = 0; id < graph.num_nodes(); ++id) {
    const Node& node = graph.node(id);
    if (node.op == "Const") {
      TFE_ASSIGN_OR_RETURN(value_of[id][0],
                           trace.AddConstant(node.constant_value));
    }
  }

  // Reverse-mode sweep over the forward graph's structure, keyed by
  // endpoint. Gradient functions execute ops through the dispatcher, which
  // records them into this trace.
  std::map<std::pair<int, int>, Tensor> grads;
  auto accumulate = [&](const Endpoint& e, const Tensor& grad) -> Status {
    auto key = std::make_pair(e.node_id, e.index);
    auto it = grads.find(key);
    if (it == grads.end()) {
      grads.emplace(key, grad);
    } else {
      it->second = ops::add(it->second, grad);
    }
    return Status::OK();
  };
  for (const auto& [index, param] : output_grads) {
    TFE_RETURN_IF_ERROR(accumulate(forward->outputs()[index], param));
  }
  // Accumulators are the FIRST value at their arg's endpoint, so the sweep's
  // emplace-then-add behavior folds every later contribution onto them.
  for (const auto& [arg_index, param] : accumulator_params) {
    TFE_RETURN_IF_ERROR(
        accumulate({forward->arg_nodes()[arg_index], 0}, param));
  }

  for (int id = graph.num_nodes() - 1; id >= 0; --id) {
    const Node& node = graph.node(id);
    if (node.op == "Arg" || node.op == "Const") continue;

    std::vector<Tensor> grad_outputs(node.num_outputs());
    bool any_grad = false;
    for (int j = 0; j < node.num_outputs(); ++j) {
      auto it = grads.find({id, j});
      if (it != grads.end()) {
        grad_outputs[j] = it->second;
        any_grad = true;
      }
    }
    if (!any_grad) continue;

    const GradFn* grad_fn = GradientRegistry::Global()->Find(node.op);
    if (grad_fn == nullptr) {
      auto def = OpRegistry::Global()->LookUp(node.op);
      if (def.ok() && !(*def)->differentiable) continue;
      return Unimplemented("No gradient for op " + node.op +
                           " inside staged function " + forward->name());
    }
    for (int j = 0; j < node.num_outputs(); ++j) {
      if (!grad_outputs[j].defined() &&
          node.outputs[j].dtype != DType::kResource) {
        grad_outputs[j] = ops::zeros_like(value_of[id][j]);
      }
    }
    TapeEntry synthetic;
    synthetic.op_name = node.op;
    synthetic.attrs = node.attrs;
    synthetic.device = node.requested_device;
    for (const Endpoint& e : node.inputs) {
      synthetic.inputs.push_back(value_of[e.node_id][e.index]);
    }
    for (int j = 0; j < node.num_outputs(); ++j) {
      synthetic.outputs.push_back(value_of[id][j]);
    }
    TFE_ASSIGN_OR_RETURN(std::vector<Tensor> grad_inputs,
                         (*grad_fn)(synthetic, grad_outputs));
    if (grad_inputs.size() != node.inputs.size()) {
      return Internal("Gradient arity mismatch for " + node.op);
    }
    for (size_t j = 0; j < grad_inputs.size(); ++j) {
      if (!grad_inputs[j].defined()) continue;
      TFE_RETURN_IF_ERROR(accumulate(node.inputs[j], grad_inputs[j]));
    }
  }

  // Outputs: the gradient for each forward arg that received one.
  for (int i = 0; i < forward->num_args(); ++i) {
    int arg_node = forward->arg_nodes()[i];
    auto it = grads.find({arg_node, 0});
    if (it == grads.end()) continue;
    Tensor grad = it->second;
    if (!grad.is_symbolic() || grad.graph() != &backward_fn->graph()) {
      TFE_ASSIGN_OR_RETURN(grad, trace.Capture(grad));
    }
    backward_fn->outputs().push_back({grad.node_id(), grad.output_index()});
    entry.backward.grad_arg_indices.push_back(i);
  }

  TFE_RETURN_IF_ERROR(passes::Optimize(*backward_fn));
  TFE_RETURN_IF_ERROR(ctx->functions().Register(backward_fn));
  entry.backward.function = backward_fn;
  return entry;
}

}  // namespace

StatusOr<std::shared_ptr<GraphFunction>> BuildForwardFunction(
    EagerContext* ctx, const std::shared_ptr<GraphFunction>& function) {
  std::string name = function->name() + kForwardSuffix;
  if (ctx->functions().Contains(name)) {
    return ctx->functions().Find(name);
  }
  // Differentiate the program as written: clone from the pristine
  // pre-optimization snapshot when the tracer attached one, so the backward
  // sweep accumulates gradients in the same association as the eager tape
  // (CSE in the optimized graph would regroup contributions and perturb the
  // last ulp). Functions built directly from graphs (deserialized bundles)
  // have no snapshot and differentiate their own graph.
  const GraphFunction& src = function->autodiff_source() != nullptr
                                 ? *function->autodiff_source()
                                 : *function;
  auto forward = std::make_shared<GraphFunction>(name);
  TFE_RETURN_IF_ERROR(CloneGraphFunctionInto(src, *forward));
  forward->outputs() = src.outputs();
  for (const Endpoint& e : IntermediateEndpoints(src)) {
    forward->outputs().push_back(e);
  }
  TFE_RETURN_IF_ERROR(ctx->functions().Register(forward));
  return forward;
}

StatusOr<BackwardFunction> GetOrBuildBackwardFunction(
    EagerContext* ctx, const std::shared_ptr<GraphFunction>& forward,
    int num_original_outputs) {
  std::string key = forward->name() + "#" +
                    std::to_string(num_original_outputs);
  {
    std::lock_guard<std::mutex> lock(g_backward_mu);
    auto it = BackwardCache().find(key);
    if (it != BackwardCache().end()) return it->second.backward;
  }
  TFE_ASSIGN_OR_RETURN(BackwardCacheEntry entry,
                       BuildBackward(ctx, forward, num_original_outputs));
  std::lock_guard<std::mutex> lock(g_backward_mu);
  auto [it, inserted] = BackwardCache().emplace(key, entry);
  return it->second.backward;
}

namespace {

std::map<std::string, LoopBackwardFunction>& LoopBackwardCache() {
  static auto* cache = new std::map<std::string, LoopBackwardFunction>();
  return *cache;
}

}  // namespace

StatusOr<LoopBackwardFunction> GetOrBuildLoopBackwardFunction(
    EagerContext* ctx, const std::shared_ptr<GraphFunction>& forward,
    int num_vars) {
  std::string key = forward->name() + "#loop#" + std::to_string(num_vars);
  {
    std::lock_guard<std::mutex> lock(g_backward_mu);
    auto it = LoopBackwardCache().find(key);
    if (it != LoopBackwardCache().end()) return it->second;
  }

  // Pass 1: the standard backward reveals which captures receive gradients
  // at all, and with what dtype/shape — that set defines the accumulators.
  TFE_ASSIGN_OR_RETURN(BackwardCacheEntry probe,
                       BuildBackward(ctx, forward, num_vars));
  LoopBackwardFunction entry;
  std::vector<std::pair<int, TypeAndShape>> seeds;
  for (size_t j = 0; j < probe.backward.grad_arg_indices.size(); ++j) {
    int arg_index = probe.backward.grad_arg_indices[j];
    if (arg_index < num_vars) continue;
    const Endpoint& out = probe.backward.function->outputs()[j];
    TypeAndShape type =
        probe.backward.function->graph().endpoint_type(out);
    seeds.emplace_back(arg_index, type);
    entry.accumulated_arg_indices.push_back(arg_index);
    entry.accumulator_types.push_back(type);
  }

  // Pass 2: rebuild with those accumulators threaded through the sweep.
  TFE_ASSIGN_OR_RETURN(BackwardCacheEntry seeded,
                       BuildBackward(ctx, forward, num_vars, &seeds));
  entry.function = seeded.backward.function;
  entry.grad_arg_indices = seeded.backward.grad_arg_indices;
  entry.grad_output_indices = seeded.grad_output_indices;
  for (int arg_index : entry.accumulated_arg_indices) {
    bool present = false;
    for (int i : entry.grad_arg_indices) present |= (i == arg_index);
    if (!present) {
      return Internal("Loop backward lost a threaded capture accumulator");
    }
  }

  std::lock_guard<std::mutex> lock(g_backward_mu);
  auto [it, inserted] = LoopBackwardCache().emplace(key, std::move(entry));
  return it->second;
}

namespace {

// Which original outputs carry gradients into the backward call (mirrors
// BuildBackward's parameter layout).
StatusOr<std::vector<int>> GradOutputIndicesFor(
    const std::string& backward_key) {
  std::lock_guard<std::mutex> lock(g_backward_mu);
  auto it = BackwardCache().find(backward_key);
  if (it == BackwardCache().end()) {
    return Internal("Backward function missing from cache");
  }
  return it->second.grad_output_indices;
}

StatusOr<std::vector<Tensor>> CallGradImpl(const TapeEntry& e,
                                           const std::vector<Tensor>& g) {
  EagerContext* ctx = EagerContext::Global();
  auto name_it = e.attrs.find("function");
  if (name_it == e.attrs.end() || !name_it->second.Is<std::string>()) {
    return Internal("Call entry missing function attr");
  }
  std::string callee = name_it->second.Get<std::string>();
  int64_t num_original = static_cast<int64_t>(e.outputs.size());
  if (auto it = e.attrs.find("num_original_outputs");
      it != e.attrs.end() && it->second.Is<int64_t>()) {
    num_original = it->second.Get<int64_t>();
  }

  TFE_ASSIGN_OR_RETURN(std::shared_ptr<GraphFunction> callee_fn,
                       ctx->functions().Find(callee));

  // Resolve the forward variant and the recorded intermediates. If the tape
  // recorded a forward-variant call, its extra outputs are the
  // intermediates; otherwise (a plain Call node met during symbolic
  // backprop of an enclosing function) re-execute the forward variant to
  // rematerialize them.
  std::shared_ptr<GraphFunction> forward = callee_fn;
  std::vector<Tensor> full_outputs = e.outputs;
  if (static_cast<int64_t>(e.outputs.size()) == num_original &&
      !strings::EndsWith(callee, kForwardSuffix)) {
    TFE_ASSIGN_OR_RETURN(forward, BuildForwardFunction(ctx, callee_fn));
    AttrMap attrs;
    attrs["function"] = AttrValue(forward->name());
    attrs["num_original_outputs"] = AttrValue(num_original);
    TFE_ASSIGN_OR_RETURN(full_outputs,
                         Dispatch({.op_name = "Call", .inputs = e.inputs,
                                   .attrs = std::move(attrs),
                                   .device = e.device}));
  }

  // The backward function accepts gradients for EVERY callee output — in
  // higher-order differentiation, gradients flow into the forward variant's
  // intermediate outputs too, not only the user-visible ones.
  const int num_grad_outputs = forward->num_outputs();
  TFE_ASSIGN_OR_RETURN(BackwardFunction backward,
                       GetOrBuildBackwardFunction(ctx, forward,
                                                  num_grad_outputs));
  TFE_ASSIGN_OR_RETURN(
      std::vector<int> grad_output_indices,
      GradOutputIndicesFor(forward->name() + "#" +
                           std::to_string(num_grad_outputs)));

  // Assemble the backward call: [args..., intermediates..., output grads...].
  std::vector<Tensor> inputs = e.inputs;
  for (size_t i = num_original; i < full_outputs.size(); ++i) {
    inputs.push_back(full_outputs[i]);
  }
  for (int index : grad_output_indices) {
    Tensor grad = index < static_cast<int>(g.size()) ? g[index] : Tensor();
    if (!grad.defined()) {
      grad = ops::zeros_like(full_outputs[index]);
    }
    inputs.push_back(grad);
  }

  AttrMap attrs;
  attrs["function"] = AttrValue(backward.function->name());
  attrs["num_original_outputs"] =
      AttrValue(static_cast<int64_t>(backward.function->num_outputs()));
  TFE_ASSIGN_OR_RETURN(std::vector<Tensor> grad_values,
                       Dispatch({.op_name = "Call", .inputs = std::move(inputs),
                                 .attrs = std::move(attrs),
                                 .device = e.device}));
  if (grad_values.size() != backward.grad_arg_indices.size()) {
    return Internal("Backward function output arity mismatch");
  }
  std::vector<Tensor> result(e.inputs.size());
  for (size_t j = 0; j < grad_values.size(); ++j) {
    result[backward.grad_arg_indices[j]] = grad_values[j];
  }
  return result;
}

StatusOr<std::vector<Tensor>> HostFuncGradImpl(const TapeEntry& e,
                                               const std::vector<Tensor>& g) {
  auto func_it = e.attrs.find("func");
  if (func_it == e.attrs.end() ||
      !func_it->second.Is<std::shared_ptr<HostFunc>>()) {
    return Internal("HostFunc entry missing callback attr");
  }
  auto forward = func_it->second.Get<std::shared_ptr<HostFunc>>();
  const size_t num_inputs = e.inputs.size();
  const size_t num_outputs = e.outputs.size();

  // The backward pass is itself a host callback: it re-runs the forward
  // callback under a (persistent) tape and differentiates — the mechanism
  // the paper describes for py_func ("executes its Python function under a
  // gradient tape and as such it is differentiable", §4.7).
  auto backward = std::make_shared<HostFunc>();
  backward->name = forward->name + "_grad";
  backward->fn = [forward, num_inputs, num_outputs](
                     const std::vector<Tensor>& all)
      -> StatusOr<std::vector<Tensor>> {
    std::vector<Tensor> inputs(all.begin(), all.begin() + num_inputs);
    std::vector<Tensor> grads(all.begin() + num_inputs, all.end());
    GradientTape tape(/*persistent=*/true);
    for (const Tensor& input : inputs) tape.watch(input);
    TFE_ASSIGN_OR_RETURN(std::vector<Tensor> outputs, forward->fn(inputs));
    tape.StopRecording();
    std::vector<Tensor> result(num_inputs);
    for (size_t j = 0; j < outputs.size() && j < grads.size(); ++j) {
      if (!grads[j].defined()) continue;
      TFE_ASSIGN_OR_RETURN(std::vector<Tensor> partial,
                           tape.gradient(outputs[j], inputs, {grads[j]}));
      for (size_t i = 0; i < num_inputs; ++i) {
        if (!partial[i].defined()) continue;
        result[i] = result[i].defined() ? ops::add(result[i], partial[i])
                                        : partial[i];
      }
    }
    for (size_t i = 0; i < num_inputs; ++i) {
      if (!result[i].defined()) result[i] = ops::zeros_like(inputs[i]);
    }
    return result;
  };

  AttrMap attrs;
  attrs["func"] = AttrValue(backward);
  attrs["num_outputs"] = AttrValue(static_cast<int64_t>(num_inputs));
  for (size_t i = 0; i < num_inputs; ++i) {
    attrs[strings::StrCat("out_dtype_", i)] = AttrValue(e.inputs[i].dtype());
    attrs[strings::StrCat("out_shape_", i)] = AttrValue(e.inputs[i].shape());
  }
  std::vector<Tensor> inputs = e.inputs;
  for (size_t j = 0; j < num_outputs; ++j) {
    inputs.push_back(g[j].defined() ? g[j] : ops::zeros_like(e.outputs[j]));
  }
  TFE_ASSIGN_OR_RETURN(std::vector<Tensor> grads,
                       Dispatch({.op_name = "HostFunc",
                                 .inputs = std::move(inputs),
                                 .attrs = std::move(attrs),
                                 .device = e.device}));
  return grads;
}

}  // namespace

void RegisterFunctionGradients() {
  TFE_CHECK(GradientRegistry::Global()->Register("Call", CallGradImpl).ok());
  TFE_CHECK(
      GradientRegistry::Global()->Register("HostFunc", HostFuncGradImpl).ok());
}

}  // namespace tfe
