// Gradient functions for every differentiable primitive op.
//
// Each gradient computes with public ops, so it runs eagerly when the tape
// is queried eagerly and is recorded as graph nodes when queried inside a
// trace (paper §4.2). Registered by RegisterAllGradients().
#include "api/ops_api.h"
#include "autodiff/gradient_registry.h"
#include "runtime/dispatch.h"
#include "support/logging.h"

namespace tfe {
namespace {

using ops::operator+;
using ops::operator-;
using ops::operator*;
using ops::operator/;

void RegisterGrad(const char* op_name, GradFn fn) {
  Status status = GradientRegistry::Global()->Register(op_name, std::move(fn));
  TFE_CHECK(status.ok()) << status.ToString();
}

// Sums `grad` down to `shape` (undoing broadcasting): sum the leading extra
// axes, then sum (keeping dims) every axis where the input had extent 1.
Tensor ReduceGradToShape(const Tensor& grad, const Shape& shape) {
  if (grad.shape() == shape) return grad;
  Tensor result = grad;
  int extra = result.shape().rank() - shape.rank();
  if (extra > 0) {
    std::vector<int64_t> leading(extra);
    for (int i = 0; i < extra; ++i) leading[i] = i;
    result = ops::reduce_sum(result, leading, /*keep_dims=*/false);
  }
  std::vector<int64_t> ones_axes;
  for (int i = 0; i < shape.rank(); ++i) {
    if (shape.dims()[i] == 1 && result.shape().dims()[i] != 1) {
      ones_axes.push_back(i);
    }
  }
  if (!ones_axes.empty()) {
    result = ops::reduce_sum(result, ones_axes, /*keep_dims=*/true);
  }
  return result;
}

// Broadcasts a (possibly keep_dims-reduced) gradient back over the shape it
// was reduced from: restore the rank with 1s at the reduced axes, then rely
// on broadcasting against ones_like(x).
Tensor ExpandReducedGrad(const Tensor& grad, const TapeEntry& entry) {
  const Tensor& x = entry.inputs[0];
  std::vector<int64_t> axes;
  bool keep_dims = false;
  {
    auto it = entry.attrs.find("axis");
    if (it != entry.attrs.end() && it->second.Is<std::vector<int64_t>>()) {
      axes = it->second.Get<std::vector<int64_t>>();
    }
    auto kd = entry.attrs.find("keep_dims");
    if (kd != entry.attrs.end() && kd->second.Is<bool>()) {
      keep_dims = kd->second.Get<bool>();
    }
  }
  Tensor g = grad;
  if (!keep_dims) {
    std::vector<bool> reduced(x.shape().rank(), axes.empty());
    for (int64_t axis : axes) {
      if (axis < 0) axis += x.shape().rank();
      reduced[axis] = true;
    }
    std::vector<int64_t> with_ones;
    for (int i = 0; i < x.shape().rank(); ++i) {
      with_ones.push_back(reduced[i] ? 1 : x.shape().dims()[i]);
    }
    g = ops::reshape(g, with_ones);
  }
  return g * ops::ones_like(x);
}

int64_t ReducedElementCount(const TapeEntry& entry) {
  const Shape& in = entry.inputs[0].shape();
  std::vector<int64_t> axes;
  auto it = entry.attrs.find("axis");
  if (it != entry.attrs.end() && it->second.Is<std::vector<int64_t>>()) {
    axes = it->second.Get<std::vector<int64_t>>();
  }
  if (axes.empty()) return in.num_elements();
  int64_t count = 1;
  for (int64_t axis : axes) {
    if (axis < 0) axis += in.rank();
    count *= in.dims()[axis];
  }
  return count;
}

// A scalar constant of `like`'s dtype (broadcasts against it). Trace-aware:
// becomes a Const node inside a graph-building context.
Tensor CastedScalar(double value, const Tensor& like) {
  return ops::fill(like.dtype(), Shape(), value);
}

std::vector<int64_t> AttrVec(const TapeEntry& entry, const char* name) {
  auto it = entry.attrs.find(name);
  TFE_CHECK(it != entry.attrs.end() && it->second.Is<std::vector<int64_t>>());
  return it->second.Get<std::vector<int64_t>>();
}

std::string AttrString(const TapeEntry& entry, const char* name) {
  auto it = entry.attrs.find(name);
  TFE_CHECK(it != entry.attrs.end() && it->second.Is<std::string>());
  return it->second.Get<std::string>();
}

}  // namespace

void RegisterAllGradients() {
  // ---- broadcasting binary ---------------------------------------------------
  RegisterGrad("Add", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    return std::vector<Tensor>{ReduceGradToShape(g[0], e.inputs[0].shape()),
                               ReduceGradToShape(g[0], e.inputs[1].shape())};
  });
  RegisterGrad("Sub", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    return std::vector<Tensor>{
        ReduceGradToShape(g[0], e.inputs[0].shape()),
        ReduceGradToShape(ops::neg(g[0]), e.inputs[1].shape())};
  });
  RegisterGrad("Mul", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    return std::vector<Tensor>{
        ReduceGradToShape(g[0] * e.inputs[1], e.inputs[0].shape()),
        ReduceGradToShape(g[0] * e.inputs[0], e.inputs[1].shape())};
  });
  RegisterGrad("Div", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    const Tensor& a = e.inputs[0];
    const Tensor& b = e.inputs[1];
    Tensor da = g[0] / b;
    Tensor db = ops::neg(g[0] * a / (b * b));
    return std::vector<Tensor>{ReduceGradToShape(da, a.shape()),
                               ReduceGradToShape(db, b.shape())};
  });
  RegisterGrad("Pow", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    const Tensor& a = e.inputs[0];
    const Tensor& b = e.inputs[1];
    const Tensor& y = e.outputs[0];
    Tensor da = g[0] * b * ops::pow(a, b - ops::ones_like(b));
    // Guard log(a) for a <= 0 as TF does.
    Tensor tiny = CastedScalar(1e-30, a);
    Tensor safe_log = ops::select(ops::greater(a, ops::zeros_like(a)),
                                  ops::log(ops::maximum(a, tiny * ops::ones_like(a))),
                                  ops::zeros_like(a));
    Tensor db = g[0] * y * safe_log;
    return std::vector<Tensor>{ReduceGradToShape(da, a.shape()),
                               ReduceGradToShape(db, b.shape())};
  });
  RegisterGrad("Maximum", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    const Tensor& a = e.inputs[0];
    const Tensor& b = e.inputs[1];
    Tensor mask = ops::cast(ops::greater_equal(a * ops::ones_like(b),
                                               b * ops::ones_like(a)),
                            a.dtype());
    Tensor da = g[0] * mask;
    Tensor db = g[0] * (ops::ones_like(mask) - mask);
    return std::vector<Tensor>{ReduceGradToShape(da, a.shape()),
                               ReduceGradToShape(db, b.shape())};
  });
  RegisterGrad("Minimum", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    const Tensor& a = e.inputs[0];
    const Tensor& b = e.inputs[1];
    Tensor mask = ops::cast(ops::less_equal(a * ops::ones_like(b),
                                            b * ops::ones_like(a)),
                            a.dtype());
    Tensor da = g[0] * mask;
    Tensor db = g[0] * (ops::ones_like(mask) - mask);
    return std::vector<Tensor>{ReduceGradToShape(da, a.shape()),
                               ReduceGradToShape(db, b.shape())};
  });
  RegisterGrad("SquaredDifference",
               [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    const Tensor& a = e.inputs[0];
    const Tensor& b = e.inputs[1];
    Tensor two = CastedScalar(2.0, a);
    Tensor da = g[0] * two * (a - b);
    return std::vector<Tensor>{ReduceGradToShape(da, a.shape()),
                               ReduceGradToShape(ops::neg(da), b.shape())};
  });

  // ---- unary -------------------------------------------------------------------
  RegisterGrad("Neg", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    return std::vector<Tensor>{ops::neg(g[0])};
  });
  RegisterGrad("Abs", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    return std::vector<Tensor>{g[0] * ops::sign(e.inputs[0])};
  });
  RegisterGrad("Exp", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    return std::vector<Tensor>{g[0] * e.outputs[0]};
  });
  RegisterGrad("Log", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    return std::vector<Tensor>{g[0] / e.inputs[0]};
  });
  RegisterGrad("Sqrt", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    Tensor half = CastedScalar(0.5, e.outputs[0]);
    return std::vector<Tensor>{g[0] * half / e.outputs[0]};
  });
  RegisterGrad("Rsqrt", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    const Tensor& y = e.outputs[0];
    Tensor coefficient = CastedScalar(-0.5, y);
    return std::vector<Tensor>{g[0] * coefficient * y * y * y};
  });
  RegisterGrad("Square", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    Tensor two = CastedScalar(2.0, e.inputs[0]);
    return std::vector<Tensor>{g[0] * two * e.inputs[0]};
  });
  RegisterGrad("Tanh", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    const Tensor& y = e.outputs[0];
    return std::vector<Tensor>{g[0] * (ops::ones_like(y) - y * y)};
  });
  RegisterGrad("Sigmoid", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    const Tensor& y = e.outputs[0];
    return std::vector<Tensor>{g[0] * y * (ops::ones_like(y) - y)};
  });
  RegisterGrad("Relu", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    Tensor mask = ops::cast(
        ops::greater(e.inputs[0], ops::zeros_like(e.inputs[0])),
        e.inputs[0].dtype());
    return std::vector<Tensor>{g[0] * mask};
  });
  RegisterGrad("Sin", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    return std::vector<Tensor>{g[0] * ops::cos(e.inputs[0])};
  });
  RegisterGrad("Cos", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    return std::vector<Tensor>{ops::neg(g[0] * ops::sin(e.inputs[0]))};
  });
  RegisterGrad("Reciprocal",
               [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    const Tensor& y = e.outputs[0];
    return std::vector<Tensor>{ops::neg(g[0] * y * y)};
  });
  RegisterGrad("Sign", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    return std::vector<Tensor>{ops::zeros_like(e.inputs[0])};
  });
  RegisterGrad("Floor", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    return std::vector<Tensor>{ops::zeros_like(e.inputs[0])};
  });
  RegisterGrad("Identity", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    return std::vector<Tensor>{g[0]};
  });
  RegisterGrad("StopGradient",
               [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    return std::vector<Tensor>{Tensor()};  // gradient blocked, by design
  });
  RegisterGrad("ZerosLike", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    return std::vector<Tensor>{Tensor()};
  });
  RegisterGrad("OnesLike", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    return std::vector<Tensor>{Tensor()};
  });
  RegisterGrad("Cast", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    DType src = e.inputs[0].dtype();
    if (!IsFloating(src)) return std::vector<Tensor>{Tensor()};
    return std::vector<Tensor>{ops::cast(g[0], src)};
  });
  RegisterGrad("Select", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    const Tensor& cond = e.inputs[0];
    Tensor zeros = ops::zeros_like(g[0]);
    return std::vector<Tensor>{Tensor(), ops::select(cond, g[0], zeros),
                               ops::select(cond, zeros, g[0])};
  });

  // ---- matmul / conv / pool / norm ----------------------------------------------
  RegisterGrad("MatMul", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    bool ta = false, tb = false;
    if (auto it = e.attrs.find("transpose_a");
        it != e.attrs.end() && it->second.Is<bool>()) {
      ta = it->second.Get<bool>();
    }
    if (auto it = e.attrs.find("transpose_b");
        it != e.attrs.end() && it->second.Is<bool>()) {
      tb = it->second.Get<bool>();
    }
    const Tensor& a = e.inputs[0];
    const Tensor& b = e.inputs[1];
    Tensor da, db;
    if (!ta && !tb) {
      da = ops::matmul(g[0], b, false, true);
      db = ops::matmul(a, g[0], true, false);
    } else if (!ta && tb) {
      da = ops::matmul(g[0], b, false, false);
      db = ops::matmul(g[0], a, true, false);
    } else if (ta && !tb) {
      da = ops::matmul(b, g[0], false, true);
      db = ops::matmul(a, g[0], false, false);
    } else {
      da = ops::matmul(b, g[0], true, true);
      db = ops::matmul(g[0], a, true, true);
    }
    return std::vector<Tensor>{da, db};
  });

  RegisterGrad("Conv2D", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    const Tensor& x = e.inputs[0];
    const Tensor& filter = e.inputs[1];
    AttrMap input_attrs;
    input_attrs["strides"] = AttrValue(AttrVec(e, "strides"));
    input_attrs["padding"] = AttrValue(AttrString(e, "padding"));
    input_attrs["input_shape"] = AttrValue(x.shape());
    TFE_ASSIGN_OR_RETURN(Tensor dx,
                         DispatchSingle({.op_name = "Conv2DBackpropInput",
                                         .inputs = {filter, g[0]},
                                         .attrs = input_attrs,
                                         .device = e.device}));
    AttrMap filter_attrs;
    filter_attrs["strides"] = AttrValue(AttrVec(e, "strides"));
    filter_attrs["padding"] = AttrValue(AttrString(e, "padding"));
    filter_attrs["filter_shape"] = AttrValue(filter.shape());
    TFE_ASSIGN_OR_RETURN(Tensor df,
                         DispatchSingle({.op_name = "Conv2DBackpropFilter",
                                         .inputs = {x, g[0]},
                                         .attrs = filter_attrs,
                                         .device = e.device}));
    return std::vector<Tensor>{dx, df};
  });

  RegisterGrad("MaxPool", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    AttrMap attrs;
    attrs["ksize"] = AttrValue(AttrVec(e, "ksize"));
    attrs["strides"] = AttrValue(AttrVec(e, "strides"));
    attrs["padding"] = AttrValue(AttrString(e, "padding"));
    TFE_ASSIGN_OR_RETURN(
        Tensor dx, DispatchSingle({.op_name = "MaxPoolGrad",
                                   .inputs = {e.inputs[0], e.outputs[0], g[0]},
                                   .attrs = attrs,
                                   .device = e.device}));
    return std::vector<Tensor>{dx};
  });
  RegisterGrad("AvgPool", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    AttrMap attrs;
    attrs["ksize"] = AttrValue(AttrVec(e, "ksize"));
    attrs["strides"] = AttrValue(AttrVec(e, "strides"));
    attrs["padding"] = AttrValue(AttrString(e, "padding"));
    attrs["input_shape"] = AttrValue(e.inputs[0].shape());
    TFE_ASSIGN_OR_RETURN(Tensor dx, DispatchSingle({.op_name = "AvgPoolGrad",
                                                    .inputs = {g[0]},
                                                    .attrs = attrs,
                                                    .device = e.device}));
    return std::vector<Tensor>{dx};
  });

  RegisterGrad("FusedBatchNorm",
               [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    AttrMap attrs;
    if (auto it = e.attrs.find("epsilon");
        it != e.attrs.end() && it->second.Is<double>()) {
      attrs["epsilon"] = it->second;
    }
    TFE_ASSIGN_OR_RETURN(
        std::vector<Tensor> grads,
        Dispatch({.op_name = "FusedBatchNormGrad",
                  .inputs = {g[0], e.inputs[0], e.inputs[1], e.outputs[1],
                             e.outputs[2]},
                  .attrs = attrs,
                  .device = e.device}));
    // dx, dscale, doffset; no gradient for the moving statistics.
    return std::vector<Tensor>{grads[0], grads[1], grads[2], Tensor(),
                               Tensor()};
  });

  // ---- softmax family -----------------------------------------------------------
  RegisterGrad("Softmax", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    const Tensor& y = e.outputs[0];
    int64_t last = y.shape().rank() - 1;
    Tensor inner = ops::reduce_sum(g[0] * y, {last}, /*keep_dims=*/true);
    return std::vector<Tensor>{(g[0] - inner) * y};
  });
  RegisterGrad("LogSoftmax",
               [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    const Tensor& y = e.outputs[0];
    int64_t last = y.shape().rank() - 1;
    Tensor softmax = ops::exp(y);
    Tensor summed = ops::reduce_sum(g[0], {last}, /*keep_dims=*/true);
    return std::vector<Tensor>{g[0] - softmax * summed};
  });
  RegisterGrad("SparseSoftmaxCrossEntropyWithLogits",
               [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    // outputs: loss [b], backprop [b,c]; route d(loss) through the cached
    // backprop. Gradients flowing into the backprop output are unsupported
    // (as in TF).
    Tensor dlogits = ops::expand_dims(g[0], 1) * e.outputs[1];
    return std::vector<Tensor>{dlogits, Tensor()};
  });

  // ---- reductions ------------------------------------------------------------------
  RegisterGrad("Sum", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    return std::vector<Tensor>{ExpandReducedGrad(g[0], e)};
  });
  RegisterGrad("Mean", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    Tensor expanded = ExpandReducedGrad(g[0], e);
    Tensor count =
        CastedScalar(static_cast<double>(ReducedElementCount(e)), expanded);
    return std::vector<Tensor>{expanded / count};
  });
  for (const char* op : {"Max", "Min"}) {
    RegisterGrad(op, [](const TapeEntry& e, const std::vector<Tensor>& g)
                     -> StatusOr<std::vector<Tensor>> {
      // Distribute the gradient evenly across all extremal positions.
      const Tensor& x = e.inputs[0];
      Tensor y_b = ExpandReducedGrad(e.outputs[0], e);  // broadcast, not sum
      Tensor g_b = ExpandReducedGrad(g[0], e);
      Tensor indicator = ops::cast(ops::equal(x, y_b), x.dtype());
      std::vector<int64_t> axes;
      if (auto it = e.attrs.find("axis");
          it != e.attrs.end() && it->second.Is<std::vector<int64_t>>()) {
        axes = it->second.Get<std::vector<int64_t>>();
      }
      bool keep = false;
      if (auto kd = e.attrs.find("keep_dims");
          kd != e.attrs.end() && kd->second.Is<bool>()) {
        keep = kd->second.Get<bool>();
      }
      Tensor num_b =
          ExpandReducedGrad(ops::reduce_sum(indicator, axes, keep), e);
      return std::vector<Tensor>{indicator * g_b / num_b};
    });
  }

  // ---- shape ops -------------------------------------------------------------------
  RegisterGrad("Reshape", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    return std::vector<Tensor>{
        ops::reshape(g[0], e.inputs[0].shape().dims())};
  });
  RegisterGrad("ExpandDims",
               [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    return std::vector<Tensor>{
        ops::reshape(g[0], e.inputs[0].shape().dims())};
  });
  RegisterGrad("Squeeze", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    return std::vector<Tensor>{
        ops::reshape(g[0], e.inputs[0].shape().dims())};
  });
  RegisterGrad("Transpose",
               [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    std::vector<int64_t> perm = AttrVec(e, "perm");
    std::vector<int64_t> inverse(perm.size());
    for (size_t i = 0; i < perm.size(); ++i) inverse[perm[i]] = i;
    return std::vector<Tensor>{ops::transpose(g[0], inverse)};
  });
  RegisterGrad("Concat", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    int64_t axis = 0;
    if (auto it = e.attrs.find("axis");
        it != e.attrs.end() && it->second.Is<int64_t>()) {
      axis = it->second.Get<int64_t>();
    }
    if (axis < 0) axis += e.inputs[0].shape().rank();
    std::vector<Tensor> grads;
    grads.reserve(e.inputs.size());
    int64_t offset = 0;
    for (const Tensor& input : e.inputs) {
      std::vector<int64_t> begin(input.shape().rank(), 0);
      begin[axis] = offset;
      grads.push_back(ops::slice(g[0], begin, input.shape().dims()));
      offset += input.shape().dim(static_cast<int>(axis));
    }
    return grads;
  });
  RegisterGrad("Slice", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    std::vector<int64_t> begin = AttrVec(e, "begin");
    const Shape& in = e.inputs[0].shape();
    const Shape& out = e.outputs[0].shape();
    std::vector<int64_t> paddings(in.rank() * 2);
    for (int i = 0; i < in.rank(); ++i) {
      paddings[2 * i] = begin[i];
      paddings[2 * i + 1] = in.dims()[i] - begin[i] - out.dims()[i];
    }
    return std::vector<Tensor>{ops::pad(g[0], paddings)};
  });
  RegisterGrad("Pad", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    std::vector<int64_t> paddings = AttrVec(e, "paddings");
    const Shape& in = e.inputs[0].shape();
    std::vector<int64_t> begin(in.rank());
    for (int i = 0; i < in.rank(); ++i) begin[i] = paddings[2 * i];
    return std::vector<Tensor>{ops::slice(g[0], begin, in.dims())};
  });
  RegisterGrad("Tile", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    std::vector<int64_t> multiples = AttrVec(e, "multiples");
    const Shape& in = e.inputs[0].shape();
    // Reshape to [m0, d0, m1, d1, ...] and sum the multiple axes.
    std::vector<int64_t> split_dims;
    std::vector<int64_t> sum_axes;
    for (int i = 0; i < in.rank(); ++i) {
      sum_axes.push_back(static_cast<int64_t>(split_dims.size()));
      split_dims.push_back(multiples[i]);
      split_dims.push_back(in.dims()[i]);
    }
    Tensor reshaped = ops::reshape(g[0], split_dims);
    return std::vector<Tensor>{ops::reduce_sum(reshaped, sum_axes)};
  });
  RegisterGrad("Gather", [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    const Tensor& params = e.inputs[0];
    const Tensor& indices = e.inputs[1];
    // Flatten the index dimensions of the gradient back to rows.
    std::vector<int64_t> row_shape = {-1};
    for (int i = 1; i < params.shape().rank(); ++i) {
      row_shape.push_back(params.shape().dims()[i]);
    }
    Tensor flat_grad = ops::reshape(g[0], row_shape);
    Tensor flat_indices = ops::reshape(
        indices, {indices.shape().IsScalar() ? 1 : -1});
    AttrMap attrs;
    attrs["num_segments"] = AttrValue(params.shape().dim(0));
    TFE_ASSIGN_OR_RETURN(
        Tensor dparams,
        DispatchSingle({.op_name = "UnsortedSegmentSum",
                        .inputs = {flat_grad, flat_indices},
                        .attrs = std::move(attrs),
                        .device = e.device}));
    return std::vector<Tensor>{dparams, Tensor()};
  });
  RegisterGrad("UnsortedSegmentSum",
               [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    return std::vector<Tensor>{ops::gather(g[0], e.inputs[1]), Tensor()};
  });

  // ---- state -----------------------------------------------------------------------
  // Reading a variable is the identity onto its storage: the value gradient
  // accumulates on the resource handle, which is how tapes express
  // d(target)/d(variable) (paper §4.3).
  RegisterGrad("ReadVariableOp",
               [](const TapeEntry& e, const std::vector<Tensor>& g)
                   -> StatusOr<std::vector<Tensor>> {
    return std::vector<Tensor>{g[0]};
  });

  RegisterFunctionGradients();
}

}  // namespace tfe
