#include "autodiff/tape.h"

#include "autodiff/gradient_registry.h"
#include "ops/op_registry.h"
#include "runtime/dispatch.h"
#include "staging/trace_context.h"
#include "support/strings.h"

namespace tfe {

namespace {

thread_local std::vector<GradientTape*> g_tape_stack;

StatusOr<Tensor> OnesLikeOf(const Tensor& tensor) {
  return DispatchSingle({.op_name = "OnesLike", .inputs = {tensor}});
}

StatusOr<Tensor> ZerosLikeOf(const Tensor& tensor) {
  return DispatchSingle({.op_name = "ZerosLike", .inputs = {tensor}});
}

StatusOr<Tensor> AddGradients(const Tensor& a, const Tensor& b) {
  return DispatchSingle({.op_name = "Add", .inputs = {a, b}});
}

}  // namespace

GradientTape::GradientTape(bool persistent)
    : persistent_(persistent), trace_depth_(TraceContext::Depth()) {
  g_tape_stack.push_back(this);
}

GradientTape::~GradientTape() { StopRecording(); }

void GradientTape::StopRecording() {
  if (!recording_) return;
  recording_ = false;
  // Remove from the stack (tapes normally unwind LIFO, but StopRecording may
  // be called early).
  for (auto it = g_tape_stack.rbegin(); it != g_tape_stack.rend(); ++it) {
    if (*it == this) {
      g_tape_stack.erase(std::next(it).base());
      break;
    }
  }
}

void GradientTape::watch(const Tensor& tensor) {
  TFE_CHECK(tensor.defined());
  tracked_.insert(tensor.id());
}

bool GradientTape::TracksAny(const std::vector<Tensor>& tensors) const {
  for (const Tensor& tensor : tensors) {
    if (tensor.defined() && tracked_.count(tensor.id()) > 0) return true;
  }
  return false;
}

void GradientTape::RecordOperation(const std::string& op_name,
                                   const AttrMap& attrs,
                                   const std::vector<Tensor>& inputs,
                                   const std::vector<Tensor>& outputs,
                                   const std::string& device) {
  // Variable access auto-watch (paper §4.3, Listing 2) — any depth.
  if (op_name == "ReadVariableOp" && !inputs.empty()) {
    WatchResourceOnAllTapes(inputs[0]);
  }
  if (g_tape_stack.empty()) return;
  const int depth = TraceContext::Depth();
  for (GradientTape* tape : g_tape_stack) {
    if (tape->paused_ || !tape->recording_ || tape->trace_depth_ != depth) {
      continue;
    }
    if (!tape->TracksAny(inputs)) continue;
    tape->entries_.push_back({op_name, attrs, inputs, outputs, device});
    for (const Tensor& output : outputs) {
      if (output.defined()) tape->tracked_.insert(output.id());
    }
  }
}

void GradientTape::WatchResourceOnAllTapes(const Tensor& resource) {
  if (!resource.defined() || !resource.is_resource()) return;
  for (GradientTape* tape : g_tape_stack) {
    if (tape->recording_ && !tape->paused_) {
      tape->tracked_.insert(resource.id());
    }
  }
}

bool GradientTape::WouldRecord(const std::vector<Tensor>& inputs) {
  const int depth = TraceContext::Depth();
  for (GradientTape* tape : g_tape_stack) {
    if (!tape->paused_ && tape->recording_ && tape->trace_depth_ == depth &&
        tape->TracksAny(inputs)) {
      return true;
    }
  }
  return false;
}

StatusOr<std::vector<Tensor>> GradientTape::gradient(
    const Tensor& target, const std::vector<Tensor>& sources,
    const std::vector<Tensor>& output_gradients) {
  if (used_ && !persistent_) {
    return FailedPrecondition(
        "A non-persistent GradientTape can only compute one gradient; "
        "construct with persistent=true to compute several");
  }
  used_ = true;
  if (!target.defined()) return InvalidArgument("gradient() of undefined target");

  // Entering the backward pass is a sync point for async eager (paper §5):
  // wait for the target's producer and surface a deferred failure as this
  // call's Status instead of letting it poison the gradient chain. The
  // recorded forward tensors materialize lazily as gradient kernels read
  // them; backward ops themselves dispatch asynchronously like any others.
  TFE_RETURN_IF_ERROR(target.Materialize());

  // The backward pass must not record onto this tape (it *is* recorded by
  // enclosing tapes and traces — that is how higher-order and staged
  // gradients compose).
  paused_ = true;
  struct Unpause {
    GradientTape* tape;
    ~Unpause() { tape->paused_ = false; }
  } unpause{this};

  // Seed.
  std::unordered_map<int64_t, Tensor> grads;
  if (!output_gradients.empty()) {
    if (output_gradients.size() != 1 || !output_gradients[0].defined()) {
      return InvalidArgument("output_gradients must hold one defined tensor");
    }
    grads[target.id()] = output_gradients[0];
  } else {
    TFE_ASSIGN_OR_RETURN(grads[target.id()], OnesLikeOf(target));
  }

  // Needed-set pruning: walk backwards from the target so unrelated recorded
  // ops are not differentiated.
  std::vector<bool> needed(entries_.size(), false);
  std::unordered_set<int64_t> need_ids = {target.id()};
  for (int i = static_cast<int>(entries_.size()) - 1; i >= 0; --i) {
    const TapeEntry& entry = entries_[i];
    bool produces_needed = false;
    for (const Tensor& output : entry.outputs) {
      if (output.defined() && need_ids.count(output.id()) > 0) {
        produces_needed = true;
        break;
      }
    }
    if (!produces_needed) continue;
    needed[i] = true;
    for (const Tensor& input : entry.inputs) {
      if (input.defined()) need_ids.insert(input.id());
    }
  }

  for (int i = static_cast<int>(entries_.size()) - 1; i >= 0; --i) {
    if (!needed[i]) continue;
    const TapeEntry& entry = entries_[i];

    std::vector<Tensor> grad_outputs(entry.outputs.size());
    bool any_grad = false;
    for (size_t j = 0; j < entry.outputs.size(); ++j) {
      if (!entry.outputs[j].defined()) continue;
      auto it = grads.find(entry.outputs[j].id());
      if (it != grads.end()) {
        grad_outputs[j] = it->second;
        any_grad = true;
      }
    }
    if (!any_grad) continue;

    const GradFn* grad_fn = GradientRegistry::Global()->Find(entry.op_name);
    if (grad_fn == nullptr) {
      auto def = OpRegistry::Global()->LookUp(entry.op_name);
      if (def.ok() && !(*def)->differentiable) continue;  // gradient is zero
      return Unimplemented(strings::StrCat(
          "No gradient registered for op ", entry.op_name,
          " (op is marked differentiable)"));
    }

    // Aggregate-with-zeros: gradient functions may rely on every output
    // gradient being present.
    for (size_t j = 0; j < grad_outputs.size(); ++j) {
      if (!grad_outputs[j].defined() && entry.outputs[j].defined() &&
          !entry.outputs[j].is_resource()) {
        TFE_ASSIGN_OR_RETURN(grad_outputs[j], ZerosLikeOf(entry.outputs[j]));
      }
    }

    TFE_ASSIGN_OR_RETURN(std::vector<Tensor> grad_inputs,
                         (*grad_fn)(entry, grad_outputs));
    if (grad_inputs.size() != entry.inputs.size()) {
      return Internal(strings::StrCat("Gradient for ", entry.op_name,
                                      " returned ", grad_inputs.size(),
                                      " gradients for ", entry.inputs.size(),
                                      " inputs"));
    }
    for (size_t j = 0; j < grad_inputs.size(); ++j) {
      if (!grad_inputs[j].defined()) continue;
      int64_t id = entry.inputs[j].id();
      auto it = grads.find(id);
      if (it == grads.end()) {
        grads[id] = grad_inputs[j];
      } else {
        TFE_ASSIGN_OR_RETURN(it->second,
                             AddGradients(it->second, grad_inputs[j]));
      }
    }
  }

  std::vector<Tensor> results;
  results.reserve(sources.size());
  for (const Tensor& source : sources) {
    if (!source.defined()) {
      results.emplace_back();
      continue;
    }
    auto it = grads.find(source.id());
    results.push_back(it == grads.end() ? Tensor() : it->second);
  }
  return results;
}

}  // namespace tfe
