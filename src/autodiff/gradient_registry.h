// Registry of per-op gradient functions.
//
// A gradient function receives the recorded forward entry and the gradients
// flowing into its outputs, and returns gradients for each input (undefined
// where no gradient flows). Gradient functions compute with primitive ops
// through Dispatch(), so they run eagerly or staged depending on the ambient
// context (paper §4.2).
#ifndef TFE_AUTODIFF_GRADIENT_REGISTRY_H_
#define TFE_AUTODIFF_GRADIENT_REGISTRY_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "autodiff/tape.h"
#include "support/status.h"

namespace tfe {

using GradFn = std::function<StatusOr<std::vector<Tensor>>(
    const TapeEntry& entry, const std::vector<Tensor>& grad_outputs)>;

class GradientRegistry {
 public:
  static GradientRegistry* Global();

  Status Register(const std::string& op_name, GradFn fn);
  // nullptr when no gradient is registered.
  const GradFn* Find(const std::string& op_name) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, GradFn> gradients_;
};

// Registers every built-in gradient (autodiff/gradients.cpp +
// autodiff/function_grad.cpp); invoked from EnsureOpsRegistered().
void RegisterAllGradients();

// Gradients for composite ops (Call, HostFunc) — autodiff/function_grad.cpp.
// Called by RegisterAllGradients().
void RegisterFunctionGradients();

}  // namespace tfe

#endif  // TFE_AUTODIFF_GRADIENT_REGISTRY_H_
