// GradientTape: trace-based reverse-mode automatic differentiation
// (paper §4.2).
//
// Tapes are composable: a thread-local stack holds every active tape, so
// "multiple tapes can be active simultaneously, and higher-order gradients
// can be computed by having one tape recording while another tape computes a
// gradient". Because the backward pass executes primitive operations through
// the same dispatcher, it is recorded by enclosing tapes (higher-order
// derivatives) and by active traces (staged backward passes) with no special
// cases.
//
// Tapes are stage-scoped: a tape only records operations executed at the
// trace depth where it was created (eager tapes do not record the internals
// of a trace — they record the function *call*), but variable accesses at
// any depth watch the variable on every active tape, mirroring TF Eager.
#ifndef TFE_AUTODIFF_TAPE_H_
#define TFE_AUTODIFF_TAPE_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ops/attr_value.h"
#include "support/status.h"
#include "tensor/tensor.h"

namespace tfe {

// One recorded operation. Holding the input/output tensors keeps their
// buffers alive for the backward pass, exactly like eager-mode TF.
struct TapeEntry {
  std::string op_name;
  AttrMap attrs;
  std::vector<Tensor> inputs;
  std::vector<Tensor> outputs;
  std::string device;
};

class GradientTape {
 public:
  // Pushes onto the active-tape stack. `persistent` allows multiple
  // gradient() calls (paper API parity).
  explicit GradientTape(bool persistent = false);
  ~GradientTape();

  GradientTape(const GradientTape&) = delete;
  GradientTape& operator=(const GradientTape&) = delete;

  // Marks `tensor` (or, for resource tensors, the variable it handles) as a
  // differentiation source; ops consuming tracked tensors are recorded.
  void watch(const Tensor& tensor);

  // Ends recording early (the `with` block's exit). Idempotent; the
  // destructor calls it.
  void StopRecording();

  // d(target)/d(sources). `output_gradients`, if provided, seeds the
  // backward pass; otherwise ones are used. Returns one tensor per source;
  // a source that `target` does not depend on yields an undefined Tensor
  // (the None analog).
  StatusOr<std::vector<Tensor>> gradient(
      const Tensor& target, const std::vector<Tensor>& sources,
      const std::vector<Tensor>& output_gradients = {});

  bool persistent() const { return persistent_; }
  int num_entries() const { return static_cast<int>(entries_.size()); }

  // ---- dispatcher hooks ------------------------------------------------------

  // Offers an executed/recorded op to every active tape at the current trace
  // depth. Called by Dispatch() for both stages.
  static void RecordOperation(const std::string& op_name, const AttrMap& attrs,
                              const std::vector<Tensor>& inputs,
                              const std::vector<Tensor>& outputs,
                              const std::string& device);

  // Variable access auto-watch (paper §4.3): watches the resource handle on
  // every active tape, regardless of trace depth.
  static void WatchResourceOnAllTapes(const Tensor& resource);

  // True if some active tape at the current trace depth would record an op
  // with these inputs — the trigger for building a function's forward
  // variant (paper §4.2: "the first time a graph function is called when a
  // tape is both active and watching one of its inputs...").
  static bool WouldRecord(const std::vector<Tensor>& inputs);

 private:
  bool TracksAny(const std::vector<Tensor>& tensors) const;

  bool persistent_;
  bool used_ = false;
  bool recording_ = true;
  bool paused_ = false;  // while this tape computes its own gradient
  int trace_depth_;
  // Sources plus everything computed from them while recording.
  std::unordered_set<int64_t> tracked_;
  std::vector<TapeEntry> entries_;
};

}  // namespace tfe

#endif  // TFE_AUTODIFF_TAPE_H_
