#include "autodiff/gradient_registry.h"

namespace tfe {

GradientRegistry* GradientRegistry::Global() {
  static GradientRegistry* registry = new GradientRegistry();
  return registry;
}

Status GradientRegistry::Register(const std::string& op_name, GradFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = gradients_.emplace(op_name, std::move(fn));
  if (!inserted) {
    return AlreadyExists("Gradient already registered for " + op_name);
  }
  return Status::OK();
}

const GradFn* GradientRegistry::Find(const std::string& op_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gradients_.find(op_name);
  return it == gradients_.end() ? nullptr : &it->second;
}

}  // namespace tfe
