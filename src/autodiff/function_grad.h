// Differentiating staged functions (paper §4.2).
//
// When a graph function is first called under a watching tape, we build a
// *forward variant* that additionally returns every intermediate value the
// backward pass could need, and — when the tape is queried — a *backward
// graph function* produced by running reverse-mode AD over the forward
// graph's structure. Both are ordinary graph functions executed by Call ops,
// so "if a computation was staged in the forward pass, its corresponding
// backward pass will also be staged", the backward pass is itself
// differentiable (higher order), and there is "no meaningful change in the
// amount of computation or memory needed in the backward pass by staging or
// unstaging".
#ifndef TFE_AUTODIFF_FUNCTION_GRAD_H_
#define TFE_AUTODIFF_FUNCTION_GRAD_H_

#include <memory>
#include <vector>

#include "graph/graph_function.h"
#include "support/status.h"

namespace tfe {

class EagerContext;

// Returns (building and registering on first use) the forward variant of
// `function`: same graph, outputs extended with all intermediate node
// outputs, named "<name>__fwd".
StatusOr<std::shared_ptr<GraphFunction>> BuildForwardFunction(
    EagerContext* ctx, const std::shared_ptr<GraphFunction>& function);

struct BackwardFunction {
  std::shared_ptr<GraphFunction> function;
  // function's outputs correspond to gradients for these forward-arg
  // positions (args without incoming gradients are omitted).
  std::vector<int> grad_arg_indices;
};

// Returns (building on first use) the backward function for a forward
// variant with `num_original_outputs` user-visible outputs.
StatusOr<BackwardFunction> GetOrBuildBackwardFunction(
    EagerContext* ctx, const std::shared_ptr<GraphFunction>& forward,
    int num_original_outputs);

}  // namespace tfe

#endif  // TFE_AUTODIFF_FUNCTION_GRAD_H_
