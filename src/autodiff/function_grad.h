// Differentiating staged functions (paper §4.2).
//
// When a graph function is first called under a watching tape, we build a
// *forward variant* that additionally returns every intermediate value the
// backward pass could need, and — when the tape is queried — a *backward
// graph function* produced by running reverse-mode AD over the forward
// graph's structure. Both are ordinary graph functions executed by Call ops,
// so "if a computation was staged in the forward pass, its corresponding
// backward pass will also be staged", the backward pass is itself
// differentiable (higher order), and there is "no meaningful change in the
// amount of computation or memory needed in the backward pass by staging or
// unstaging".
#ifndef TFE_AUTODIFF_FUNCTION_GRAD_H_
#define TFE_AUTODIFF_FUNCTION_GRAD_H_

#include <memory>
#include <vector>

#include "graph/graph_function.h"
#include "support/status.h"

namespace tfe {

class EagerContext;

// Returns (building and registering on first use) the forward variant of
// `function`: same graph, outputs extended with all intermediate node
// outputs, named "<name>__fwd".
StatusOr<std::shared_ptr<GraphFunction>> BuildForwardFunction(
    EagerContext* ctx, const std::shared_ptr<GraphFunction>& function);

struct BackwardFunction {
  std::shared_ptr<GraphFunction> function;
  // function's outputs correspond to gradients for these forward-arg
  // positions (args without incoming gradients are omitted).
  std::vector<int> grad_arg_indices;
};

// Returns (building on first use) the backward function for a forward
// variant with `num_original_outputs` user-visible outputs.
StatusOr<BackwardFunction> GetOrBuildBackwardFunction(
    EagerContext* ctx, const std::shared_ptr<GraphFunction>& forward,
    int num_original_outputs);

// The backward of a While-loop body: like BackwardFunction, but gradients
// for the body's *captures* (args at index >= num_vars) are threaded through
// explicit accumulator parameters instead of being emitted fresh each call.
// The function's parameter layout is
//   [forward args..., intermediates..., grads for grad_output_indices...,
//    one accumulator per accumulated_arg_indices entry]
// and the output for an accumulated arg is `accumulator + (this iteration's
// contributions, folded in reverse-sweep order)`. Seeding the sweep with the
// accumulator makes the whole reverse loop a single flat left-fold — the
// exact association the eager tape produces for an unrolled loop — so While
// gradients stay bitwise-equal to unrolled-loop tape gradients.
struct LoopBackwardFunction {
  std::shared_ptr<GraphFunction> function;
  // function's outputs correspond to gradients for these forward-arg
  // positions (args without incoming gradients are omitted; every
  // accumulated arg is present — it carries at least its accumulator).
  std::vector<int> grad_arg_indices;
  // Which of the first `num_vars` forward outputs take gradient parameters.
  std::vector<int> grad_output_indices;
  // Capture args (>= num_vars) whose gradients are threaded, in parameter
  // order, with the dtype/shape of each accumulator.
  std::vector<int> accumulated_arg_indices;
  std::vector<TypeAndShape> accumulator_types;
};

// Returns (building on first use) the loop-body backward for a forward
// variant whose first `num_vars` args/outputs are the loop variables.
StatusOr<LoopBackwardFunction> GetOrBuildLoopBackwardFunction(
    EagerContext* ctx, const std::shared_ptr<GraphFunction>& forward,
    int num_vars);

}  // namespace tfe

#endif  // TFE_AUTODIFF_FUNCTION_GRAD_H_
