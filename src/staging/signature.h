// Input signatures: the binding-time analysis behind the trace cache
// (paper §4.6, "Polymorphism").
//
// Tensors are abstracted to (dtype, shape); resource tensors (variables) are
// encoded by object identity (their resource id); non-tensor arguments are
// encoded by value; and the requested device — "a small amount of metadata
// about the surrounding program state" — is folded in. Equal keys reuse a
// concrete graph function; distinct keys trigger a new trace.
#ifndef TFE_STAGING_SIGNATURE_H_
#define TFE_STAGING_SIGNATURE_H_

#include <string>
#include <vector>

#include "ops/attr_value.h"
#include "ops/shape_inference.h"
#include "support/status.h"
#include "tensor/tensor.h"

namespace tfe {

// The (dtype, shape) atom every signature is built from. Shared by the
// trace cache below and by the fused-program cache
// (kernels/program_cache.h), so both caches abstract tensors the same way.
std::string TypeShapeKey(DType dtype, const Shape& shape);

// Cache key for one invocation.
StatusOr<std::string> ComputeSignature(const std::vector<Tensor>& args,
                                       const AttrMap& non_tensor_args,
                                       const std::string& device);

// Key under an explicit input signature: shape/dtype come from the
// signature, so one graph function serves every compatible call (paper:
// "useful for creating a single function that can handle arbitrary batch
// sizes"). Verifies compatibility of the actual arguments.
StatusOr<std::string> ComputeExplicitSignature(
    const std::vector<TypeAndShape>& signature,
    const std::vector<Tensor>& args, const AttrMap& non_tensor_args,
    const std::string& device);

}  // namespace tfe

#endif  // TFE_STAGING_SIGNATURE_H_
