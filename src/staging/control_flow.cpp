#include "staging/control_flow.h"

#include "api/ops_api.h"
#include "autodiff/function_grad.h"
#include "autodiff/gradient_registry.h"
#include "executor/executor.h"
#include "graph/passes.h"
#include "kernels/kernel_util.h"
#include "ops/op_registry.h"
#include "profiler/profiler.h"
#include "runtime/dispatch.h"
#include "runtime/eager_context.h"
#include "support/strings.h"
#include "tensor/tensor_util.h"

namespace tfe {

namespace {

// Validates that two concrete branches agree on output dtypes (shapes may
// differ in dims but must be compatible) and returns the merged types.
StatusOr<std::vector<TypeAndShape>> MergeOutputTypes(
    const GraphFunction& a, const GraphFunction& b) {
  if (a.num_outputs() != b.num_outputs()) {
    return InvalidArgument(
        strings::StrCat("cond branches produce different output counts: ",
                        a.num_outputs(), " vs ", b.num_outputs()));
  }
  std::vector<TypeAndShape> merged;
  for (int i = 0; i < a.num_outputs(); ++i) {
    TypeAndShape ta = a.output_type(i);
    TypeAndShape tb = b.output_type(i);
    if (ta.dtype != tb.dtype) {
      return InvalidArgument("cond branches disagree on output dtype");
    }
    if (ta.shape == tb.shape) {
      merged.push_back(ta);
    } else if (ta.shape.rank() == tb.shape.rank()) {
      std::vector<int64_t> dims(ta.shape.rank());
      for (int d = 0; d < ta.shape.rank(); ++d) {
        dims[d] = ta.shape.dims()[d] == tb.shape.dims()[d]
                      ? ta.shape.dims()[d]
                      : kUnknownDim;
      }
      merged.push_back({ta.dtype, Shape(std::move(dims))});
    } else {
      return InvalidArgument("cond branches disagree on output rank");
    }
  }
  return merged;
}

StatusOr<bool> ScalarPred(const Tensor& pred) {
  if (!pred.defined() || pred.is_symbolic()) {
    return Internal("Control-flow predicate is not concrete");
  }
  if (pred.is_opaque()) {
    return FailedPrecondition(
        "Value-dependent control flow cannot run on a timing-only simulated "
        "device (the predicate has no materialized value)");
  }
  if (pred.dtype() != DType::kBool || pred.num_elements() != 1) {
    return InvalidArgument("Control-flow predicate must be a scalar bool");
  }
  return pred.data<bool>()[0];
}

// Runs an already-resolved graph function on `inputs` (explicit + that
// function's captures), sharing the executor conventions of the Call kernel.
StatusOr<Executor::Result> RunResolved(EagerContext* ctx,
                                       const GraphFunction& fn,
                                       std::vector<Tensor> inputs,
                                       Device* device, uint64_t start_ns,
                                       bool compiled,
                                       uint64_t rng_stream_base) {
  Executor executor(ctx);
  return executor.Run(fn, inputs, device, start_ns, compiled,
                      /*parallel=*/!Executor::InExecutor(), rng_stream_base);
}

// Name-based variant: resolves `name` (and its fused execution variant, when
// the device executes kernels) before running.
StatusOr<Executor::Result> RunBranch(EagerContext* ctx,
                                     const std::string& name,
                                     std::vector<Tensor> inputs,
                                     Device* device, uint64_t start_ns,
                                     bool compiled, uint64_t rng_stream_base) {
  TFE_ASSIGN_OR_RETURN(std::shared_ptr<GraphFunction> fn,
                       ctx->functions().Find(name));
  std::shared_ptr<GraphFunction> to_run =
      passes::FusedExecutionVariant(ctx, device, fn);
  return RunResolved(ctx, *to_run, std::move(inputs), device, start_ns,
                     compiled, rng_stream_base);
}

Status CondKernel(KernelContext* ctx) {
  TFE_ASSIGN_OR_RETURN(auto then_name, ctx->GetAttr<std::string>("then_function"));
  TFE_ASSIGN_OR_RETURN(auto else_name, ctx->GetAttr<std::string>("else_function"));
  TFE_ASSIGN_OR_RETURN(int64_t num_args, ctx->GetAttr<int64_t>("num_args"));
  int64_t then_caps = ctx->GetAttrOr<int64_t>("then_captures", 0);
  TFE_ASSIGN_OR_RETURN(bool pred, ScalarPred(ctx->input(0)));

  // Input layout: [pred, args..., then_captures..., else_captures...].
  std::vector<Tensor> inputs(ctx->inputs().begin() + 1,
                             ctx->inputs().begin() + 1 + num_args);
  if (pred) {
    for (int64_t i = 0; i < then_caps; ++i) {
      inputs.push_back(ctx->input(static_cast<int>(1 + num_args + i)));
    }
  } else {
    for (int i = static_cast<int>(1 + num_args + then_caps);
         i < ctx->num_inputs(); ++i) {
      inputs.push_back(ctx->input(i));
    }
  }
  TFE_ASSIGN_OR_RETURN(
      Executor::Result result,
      RunBranch(ctx->eager_context(), pred ? then_name : else_name,
                std::move(inputs), ctx->device(), ctx->start_ns(),
                ctx->compiled(), ctx->rng_stream()));
  for (size_t i = 0; i < result.outputs.size(); ++i) {
    ctx->SetOutput(static_cast<int>(i), result.outputs[i]);
  }
  ctx->set_completion_ns(result.finish_ns);
  return Status::OK();
}

Status WhileKernel(KernelContext* ctx) {
  TFE_ASSIGN_OR_RETURN(auto cond_name, ctx->GetAttr<std::string>("cond_function"));
  TFE_ASSIGN_OR_RETURN(auto body_name, ctx->GetAttr<std::string>("body_function"));
  TFE_ASSIGN_OR_RETURN(int64_t num_vars, ctx->GetAttr<int64_t>("num_vars"));
  int64_t cond_caps = ctx->GetAttrOr<int64_t>("cond_captures", 0);
  int64_t max_iterations =
      ctx->GetAttrOr<int64_t>("maximum_iterations", 1'000'000);

  // Input layout: [vars..., cond_captures..., body_captures...].
  std::vector<Tensor> vars(ctx->inputs().begin(),
                           ctx->inputs().begin() + num_vars);
  std::vector<Tensor> cond_captures(
      ctx->inputs().begin() + num_vars,
      ctx->inputs().begin() + num_vars + cond_caps);
  std::vector<Tensor> body_captures(
      ctx->inputs().begin() + num_vars + cond_caps, ctx->inputs().end());

  static profiler::Counter* iterations_counter =
      profiler::Metrics().GetCounter("loop.iterations");
  static profiler::Counter* body_hit_counter =
      profiler::Metrics().GetCounter("loop.body_cache_hit");
  static const uint32_t loop_name_id = profiler::Intern("staged_loop");

  uint64_t now_ns = ctx->start_ns();
  EagerContext* ectx = ctx->eager_context();
  // Iteration fast path: resolve both functions AND their fused execution
  // variants once, outside the loop — each iteration is then a single
  // executor run over a pre-compiled graph (one GetOrBuildExecutionVariant +
  // FusedProgramCache lookup per loop, not per iteration). Freed loop-state
  // buffers return to the device arena's size-class freelists, so the next
  // iteration's identically-shaped state reuses the same blocks.
  TFE_ASSIGN_OR_RETURN(std::shared_ptr<GraphFunction> cond_fn,
                       ectx->functions().Find(cond_name));
  TFE_ASSIGN_OR_RETURN(std::shared_ptr<GraphFunction> body_fn,
                       ectx->functions().Find(body_name));
  bool body_built_now = false;
  std::shared_ptr<GraphFunction> cond_run =
      passes::FusedExecutionVariant(ectx, ctx->device(), cond_fn);
  std::shared_ptr<GraphFunction> body_run = passes::FusedExecutionVariant(
      ectx, ctx->device(), body_fn, &body_built_now);

  int64_t completed = 0;
  for (int64_t iteration = 0;; ++iteration) {
    if (iteration >= max_iterations) {
      return FailedPrecondition("While exceeded maximum_iterations");
    }
    std::vector<Tensor> cond_inputs = vars;
    cond_inputs.insert(cond_inputs.end(), cond_captures.begin(),
                       cond_captures.end());
    // Every cond/body run gets its own stream base so random ops draw fresh
    // values each iteration, deterministically: 2k+1 / 2k+2 in the space
    // spread from this While node's stream.
    const uint64_t iter_base =
        random::SplitMix64(ctx->rng_stream()) +
        2 * static_cast<uint64_t>(iteration);
    TFE_ASSIGN_OR_RETURN(
        Executor::Result cond_result,
        RunResolved(ectx, *cond_run, std::move(cond_inputs), ctx->device(),
                    now_ns, ctx->compiled(), iter_base + 1));
    now_ns = cond_result.finish_ns;
    if (cond_result.outputs.size() != 1) {
      return InvalidArgument("While condition must produce one output");
    }
    TFE_ASSIGN_OR_RETURN(bool keep_going, ScalarPred(cond_result.outputs[0]));
    if (!keep_going) break;

    std::vector<Tensor> body_inputs = vars;
    body_inputs.insert(body_inputs.end(), body_captures.begin(),
                       body_captures.end());
    TFE_ASSIGN_OR_RETURN(
        Executor::Result body_result,
        RunResolved(ectx, *body_run, std::move(body_inputs), ctx->device(),
                    now_ns, ctx->compiled(), iter_base + 2));
    now_ns = body_result.finish_ns;
    if (static_cast<int64_t>(body_result.outputs.size()) != num_vars) {
      return InvalidArgument("While body must return the loop variables");
    }
    vars = std::move(body_result.outputs);
    ++completed;
    iterations_counter->Increment();
    // Every iteration after the loop's one-time variant resolution is a
    // body-cache hit; only the very first iteration of the execution that
    // actually built the variant pays the miss.
    if (iteration > 0 || !body_built_now) body_hit_counter->Increment();
  }
  profiler::RecordInstant(profiler::EventKind::kLoop, loop_name_id,
                          completed);
  for (int64_t i = 0; i < num_vars; ++i) {
    ctx->SetOutput(static_cast<int>(i), vars[i]);
  }
  ctx->set_completion_ns(now_ns);
  return Status::OK();
}

// The gradient of Cond is a Cond over the branches' staged backward
// computations: grad-branch(pred=true) rematerializes the then-branch's
// intermediates via its forward variant and runs its backward function,
// producing gradients aligned with the *full* Cond input list (zeros for
// the other branch's captures).
StatusOr<std::string> BuildCondGradBranch(
    EagerContext* ctx, const std::string& branch_name, int64_t num_args,
    int64_t my_capture_offset, int64_t my_capture_count,
    int64_t total_inputs, const std::vector<TypeAndShape>& input_types,
    const std::vector<TypeAndShape>& grad_types) {
  std::string cache_name = branch_name + "__cond_grad";
  if (ctx->functions().Contains(cache_name)) return cache_name;

  TFE_ASSIGN_OR_RETURN(std::shared_ptr<GraphFunction> branch,
                       ctx->functions().Find(branch_name));
  for (const Capture& capture : branch->captures()) {
    if (capture.tensor.is_resource()) {
      return Unimplemented(
          "Gradients of cond branches that capture variables are not "
          "supported");
    }
  }
  TFE_ASSIGN_OR_RETURN(std::shared_ptr<GraphFunction> forward,
                       BuildForwardFunction(ctx, branch));
  TFE_ASSIGN_OR_RETURN(
      BackwardFunction backward,
      GetOrBuildBackwardFunction(ctx, forward, forward->num_outputs()));

  auto grad_fn = std::make_shared<GraphFunction>(cache_name);
  {
    TraceContext trace(grad_fn, ctx);
    // Parameters: every Cond data input (both branches' captures), then the
    // output gradients.
    std::vector<Tensor> params;
    for (const TypeAndShape& type : input_types) {
      TFE_ASSIGN_OR_RETURN(Tensor param,
                           trace.AddParameter(type.dtype, type.shape));
      params.push_back(param);
    }
    std::vector<Tensor> grad_params;
    for (const TypeAndShape& type : grad_types) {
      TFE_ASSIGN_OR_RETURN(Tensor param,
                           trace.AddParameter(type.dtype, type.shape));
      grad_params.push_back(param);
    }

    // This branch's inputs: the shared explicit args + its own captures.
    std::vector<Tensor> branch_inputs(params.begin(),
                                      params.begin() + num_args);
    for (int64_t i = 0; i < my_capture_count; ++i) {
      branch_inputs.push_back(params[my_capture_offset + i]);
    }

    // Rematerialize the forward variant's intermediates.
    AttrMap call_attrs;
    call_attrs["function"] = AttrValue(forward->name());
    call_attrs["num_original_outputs"] =
        AttrValue(static_cast<int64_t>(branch->num_outputs()));
    TFE_ASSIGN_OR_RETURN(std::vector<Tensor> full_outputs,
                         Dispatch({.op_name = "Call", .inputs = branch_inputs,
                                   .attrs = std::move(call_attrs)}));

    // Backward call: [args..., intermediates..., grads for ALL fwd outputs].
    std::vector<Tensor> backward_inputs = branch_inputs;
    for (size_t i = branch->outputs().size(); i < full_outputs.size(); ++i) {
      backward_inputs.push_back(full_outputs[i]);
    }
    for (int i = 0; i < forward->num_outputs(); ++i) {
      if (i < static_cast<int>(grad_params.size())) {
        backward_inputs.push_back(grad_params[i]);
      } else {
        backward_inputs.push_back(ops::zeros_like(full_outputs[i]));
      }
    }
    AttrMap bwd_attrs;
    bwd_attrs["function"] = AttrValue(backward.function->name());
    TFE_ASSIGN_OR_RETURN(
        std::vector<Tensor> grad_values,
        Dispatch({.op_name = "Call", .inputs = std::move(backward_inputs),
                  .attrs = std::move(bwd_attrs)}));

    // Outputs: one gradient per Cond data input; zeros where this branch
    // contributes nothing.
    std::vector<Tensor> result(total_inputs);
    for (size_t j = 0; j < grad_values.size(); ++j) {
      int arg_index = backward.grad_arg_indices[j];
      int64_t slot = arg_index < num_args
                         ? arg_index
                         : my_capture_offset + (arg_index - num_args);
      result[slot] = grad_values[j];
    }
    for (int64_t i = 0; i < total_inputs; ++i) {
      if (!result[i].defined()) result[i] = ops::zeros_like(params[i]);
    }
    for (Tensor& out : result) {
      grad_fn->outputs().push_back({out.node_id(), out.output_index()});
    }
  }
  TFE_RETURN_IF_ERROR(ctx->functions().Register(grad_fn));
  return cache_name;
}

StatusOr<std::vector<Tensor>> CondGradImpl(const TapeEntry& e,
                                           const std::vector<Tensor>& g) {
  EagerContext* ctx = EagerContext::Global();
  auto attr_str = [&](const char* name) {
    return e.attrs.at(name).Get<std::string>();
  };
  int64_t num_args = e.attrs.at("num_args").Get<int64_t>();
  int64_t then_caps = e.attrs.count("then_captures")
                          ? e.attrs.at("then_captures").Get<int64_t>()
                          : 0;
  const int64_t total_inputs = static_cast<int64_t>(e.inputs.size()) - 1;

  std::vector<TypeAndShape> input_types;
  for (size_t i = 1; i < e.inputs.size(); ++i) {
    if (e.inputs[i].is_resource()) {
      return Unimplemented(
          "Gradients of cond over resource inputs are not supported");
    }
    input_types.push_back({e.inputs[i].dtype(), e.inputs[i].shape()});
  }
  std::vector<TypeAndShape> grad_types;
  std::vector<Tensor> grads = g;
  for (size_t i = 0; i < e.outputs.size(); ++i) {
    if (!grads[i].defined()) grads[i] = ops::zeros_like(e.outputs[i]);
    grad_types.push_back({grads[i].dtype(), grads[i].shape()});
  }

  TFE_ASSIGN_OR_RETURN(
      std::string then_grad,
      BuildCondGradBranch(ctx, attr_str("then_function"), num_args,
                          /*my_capture_offset=*/num_args, then_caps,
                          total_inputs, input_types, grad_types));
  TFE_ASSIGN_OR_RETURN(
      std::string else_grad,
      BuildCondGradBranch(ctx, attr_str("else_function"), num_args,
                          /*my_capture_offset=*/num_args + then_caps,
                          total_inputs - num_args - then_caps, total_inputs,
                          input_types, grad_types));

  AttrMap attrs;
  attrs["then_function"] = AttrValue(then_grad);
  attrs["else_function"] = AttrValue(else_grad);
  attrs["num_args"] =
      AttrValue(static_cast<int64_t>(total_inputs + grads.size()));
  attrs["then_captures"] = AttrValue(static_cast<int64_t>(0));
  std::vector<Tensor> inputs = {e.inputs[0]};  // same predicate
  inputs.insert(inputs.end(), e.inputs.begin() + 1, e.inputs.end());
  inputs.insert(inputs.end(), grads.begin(), grads.end());
  TFE_ASSIGN_OR_RETURN(std::vector<Tensor> input_grads,
                       Dispatch({.op_name = "Cond",
                                 .inputs = std::move(inputs),
                                 .attrs = std::move(attrs),
                                 .device = e.device}));
  std::vector<Tensor> result(e.inputs.size());
  for (size_t i = 0; i < input_grads.size(); ++i) {
    result[i + 1] = input_grads[i];
  }
  return result;  // no gradient for the predicate
}

// ---------------------------------------------------------------------------
// While gradient.
//
// Cond's gradient pattern (rematerialize intermediates via the forward
// variant, run the staged backward) is the per-iteration template; the loop
// structure around it is:
//   forward replay:  re-run cond/body, pushing each iteration's loop
//                    variables onto a host-side tensor stack (memory bound:
//                    iterations × loop-state size, <= maximum_iterations —
//                    captures are not snapshotted);
//   backward sweep:  for i = N-1..0, run body__fwd on snapshot i to
//                    rematerialize intermediates, then the loop backward
//                    (function_grad.h: capture gradients threaded through
//                    zero-seeded accumulators) to chain the var gradients
//                    and fold this iteration's capture contributions.
// The accumulator threading keeps the whole sweep a single flat left-fold in
// reverse execution order — the same association the eager tape produces for
// an unrolled loop — which is what makes While gradients bitwise-equal to
// unrolled-loop tape gradients for deterministic bodies.

Status WhileGradKernel(KernelContext* ctx) {
  TFE_ASSIGN_OR_RETURN(auto cond_name,
                       ctx->GetAttr<std::string>("cond_function"));
  TFE_ASSIGN_OR_RETURN(auto body_name,
                       ctx->GetAttr<std::string>("body_function"));
  TFE_ASSIGN_OR_RETURN(auto fwd_name, ctx->GetAttr<std::string>("body_forward"));
  TFE_ASSIGN_OR_RETURN(auto bwd_name,
                       ctx->GetAttr<std::string>("body_backward"));
  TFE_ASSIGN_OR_RETURN(int64_t num_vars, ctx->GetAttr<int64_t>("num_vars"));
  int64_t cond_caps = ctx->GetAttrOr<int64_t>("cond_captures", 0);
  int64_t max_iterations =
      ctx->GetAttrOr<int64_t>("maximum_iterations", 1'000'000);
  TFE_ASSIGN_OR_RETURN(
      auto grad_arg_indices,
      ctx->GetAttr<std::vector<int64_t>>("grad_arg_indices"));
  TFE_ASSIGN_OR_RETURN(
      auto grad_output_indices,
      ctx->GetAttr<std::vector<int64_t>>("grad_output_indices"));

  const int64_t num_grad_in = static_cast<int64_t>(grad_output_indices.size());
  const int64_t num_body_caps =
      ctx->num_inputs() - num_vars - cond_caps - num_grad_in;
  if (num_body_caps < 0) {
    return InvalidArgument("WhileGrad input count mismatch");
  }
  // Input layout: [vars..., cond_captures..., body_captures..., out grads].
  std::vector<Tensor> vars(ctx->inputs().begin(),
                           ctx->inputs().begin() + num_vars);
  std::vector<Tensor> cond_captures(
      ctx->inputs().begin() + num_vars,
      ctx->inputs().begin() + num_vars + cond_caps);
  std::vector<Tensor> body_captures(
      ctx->inputs().begin() + num_vars + cond_caps,
      ctx->inputs().begin() + num_vars + cond_caps + num_body_caps);

  static profiler::Counter* grad_iterations_counter =
      profiler::Metrics().GetCounter("loop.grad_iterations");
  static const uint32_t grad_name_id = profiler::Intern("staged_loop_grad");

  EagerContext* ectx = ctx->eager_context();
  Device* device = ctx->device();
  TFE_ASSIGN_OR_RETURN(std::shared_ptr<GraphFunction> cond_fn,
                       ectx->functions().Find(cond_name));
  TFE_ASSIGN_OR_RETURN(std::shared_ptr<GraphFunction> body_fn,
                       ectx->functions().Find(body_name));
  TFE_ASSIGN_OR_RETURN(std::shared_ptr<GraphFunction> fwd_fn,
                       ectx->functions().Find(fwd_name));
  TFE_ASSIGN_OR_RETURN(std::shared_ptr<GraphFunction> bwd_fn,
                       ectx->functions().Find(bwd_name));
  std::shared_ptr<GraphFunction> cond_run =
      passes::FusedExecutionVariant(ectx, device, cond_fn);
  std::shared_ptr<GraphFunction> body_run =
      passes::FusedExecutionVariant(ectx, device, body_fn);
  std::shared_ptr<GraphFunction> fwd_run =
      passes::FusedExecutionVariant(ectx, device, fwd_fn);
  std::shared_ptr<GraphFunction> bwd_run =
      passes::FusedExecutionVariant(ectx, device, bwd_fn);

  // Forward replay, snapshotting the loop variables per iteration. The rng
  // spread mirrors WhileKernel's so seeded randomness inside the body draws
  // iteration-stable values; seed-0 stream randomness replays from THIS
  // node's stream, not the forward While's — the same rematerialization
  // caveat Cond's gradient has.
  uint64_t now_ns = ctx->start_ns();
  const uint64_t rng_root = random::SplitMix64(ctx->rng_stream());
  std::vector<std::vector<Tensor>> stack;
  for (int64_t iteration = 0;; ++iteration) {
    if (iteration >= max_iterations) {
      return FailedPrecondition("WhileGrad replay exceeded maximum_iterations");
    }
    const uint64_t iter_base = rng_root + 2 * static_cast<uint64_t>(iteration);
    std::vector<Tensor> cond_inputs = vars;
    cond_inputs.insert(cond_inputs.end(), cond_captures.begin(),
                       cond_captures.end());
    TFE_ASSIGN_OR_RETURN(
        Executor::Result cond_result,
        RunResolved(ectx, *cond_run, std::move(cond_inputs), device, now_ns,
                    ctx->compiled(), iter_base + 1));
    now_ns = cond_result.finish_ns;
    TFE_ASSIGN_OR_RETURN(bool keep_going, ScalarPred(cond_result.outputs.at(0)));
    if (!keep_going) break;
    stack.push_back(vars);
    std::vector<Tensor> body_inputs = vars;
    body_inputs.insert(body_inputs.end(), body_captures.begin(),
                       body_captures.end());
    TFE_ASSIGN_OR_RETURN(
        Executor::Result body_result,
        RunResolved(ectx, *body_run, std::move(body_inputs), device, now_ns,
                    ctx->compiled(), iter_base + 2));
    now_ns = body_result.finish_ns;
    vars = std::move(body_result.outputs);
  }
  const int64_t n_iters = static_cast<int64_t>(stack.size());

  // Incoming gradients for the loop outputs (zeros where the tape had none).
  std::vector<Tensor> grad_vars(num_vars);
  for (size_t k = 0; k < grad_output_indices.size(); ++k) {
    grad_vars[grad_output_indices[k]] =
        ctx->input(static_cast<int>(num_vars + cond_caps + num_body_caps +
                                    static_cast<int64_t>(k)));
  }
  for (int64_t v = 0; v < num_vars; ++v) {
    if (!grad_vars[v].defined()) {
      grad_vars[v] = tensor_util::Zeros(vars[v].dtype(), vars[v].shape());
    }
  }

  // Zero-initialized capture accumulators, typed by the declared outputs.
  std::vector<Tensor> accs;
  int64_t num_accs = 0;
  for (int64_t arg : grad_arg_indices) num_accs += (arg >= num_vars) ? 1 : 0;
  for (int64_t k = 0; k < num_accs; ++k) {
    const int64_t slot = num_vars + k;
    TFE_ASSIGN_OR_RETURN(
        DType dt, ctx->GetAttr<DType>(strings::StrCat("out_dtype_", slot)));
    TFE_ASSIGN_OR_RETURN(
        Shape sh, ctx->GetAttr<Shape>(strings::StrCat("out_shape_", slot)));
    for (int64_t dim : sh.dims()) {
      if (dim == kUnknownDim) {
        return Unimplemented(
            "While capture gradients with dynamic shapes are not supported");
      }
    }
    accs.push_back(tensor_util::Zeros(dt, sh));
  }

  // Reverse sweep: rematerialize iteration i's intermediates, run the loop
  // backward, chain var gradients, thread capture accumulators.
  for (int64_t i = n_iters - 1; i >= 0; --i) {
    const uint64_t iter_base = rng_root + 2 * static_cast<uint64_t>(i);
    std::vector<Tensor> fwd_inputs = stack[i];
    fwd_inputs.insert(fwd_inputs.end(), body_captures.begin(),
                      body_captures.end());
    TFE_ASSIGN_OR_RETURN(
        Executor::Result fwd_result,
        RunResolved(ectx, *fwd_run, std::move(fwd_inputs), device, now_ns,
                    ctx->compiled(), iter_base + 2));
    now_ns = fwd_result.finish_ns;

    std::vector<Tensor> bwd_inputs = stack[i];
    bwd_inputs.insert(bwd_inputs.end(), body_captures.begin(),
                      body_captures.end());
    for (size_t j = static_cast<size_t>(num_vars);
         j < fwd_result.outputs.size(); ++j) {
      bwd_inputs.push_back(fwd_result.outputs[j]);
    }
    for (int64_t idx : grad_output_indices) bwd_inputs.push_back(grad_vars[idx]);
    bwd_inputs.insert(bwd_inputs.end(), accs.begin(), accs.end());
    TFE_ASSIGN_OR_RETURN(
        Executor::Result bwd_result,
        RunResolved(ectx, *bwd_run, std::move(bwd_inputs), device, now_ns,
                    ctx->compiled(), iter_base + 3));
    now_ns = bwd_result.finish_ns;
    if (bwd_result.outputs.size() != grad_arg_indices.size()) {
      return Internal("While loop-backward output arity mismatch");
    }

    std::vector<Tensor> next_grad_vars(num_vars);
    size_t acc_pos = 0;
    for (size_t j = 0; j < grad_arg_indices.size(); ++j) {
      if (grad_arg_indices[j] < num_vars) {
        next_grad_vars[grad_arg_indices[j]] = bwd_result.outputs[j];
      } else {
        accs[acc_pos++] = bwd_result.outputs[j];
      }
    }
    for (int64_t v = 0; v < num_vars; ++v) {
      if (!next_grad_vars[v].defined()) {
        next_grad_vars[v] =
            tensor_util::Zeros(stack[i][v].dtype(), stack[i][v].shape());
      }
    }
    grad_vars = std::move(next_grad_vars);
    grad_iterations_counter->Increment();
  }
  profiler::RecordInstant(profiler::EventKind::kLoop, grad_name_id,
                          n_iters);

  for (int64_t v = 0; v < num_vars; ++v) {
    ctx->SetOutput(static_cast<int>(v), grad_vars[v]);
  }
  for (int64_t k = 0; k < num_accs; ++k) {
    ctx->SetOutput(static_cast<int>(num_vars + k), accs[k]);
  }
  ctx->set_completion_ns(now_ns);
  return Status::OK();
}

StatusOr<std::vector<Tensor>> WhileGradImpl(const TapeEntry& e,
                                            const std::vector<Tensor>& g) {
  EagerContext* ctx = EagerContext::Global();
  int64_t num_vars = e.attrs.at("num_vars").Get<int64_t>();
  int64_t cond_caps = e.attrs.count("cond_captures")
                          ? e.attrs.at("cond_captures").Get<int64_t>()
                          : 0;
  int64_t max_iterations =
      e.attrs.count("maximum_iterations")
          ? e.attrs.at("maximum_iterations").Get<int64_t>()
          : 1'000'000;
  std::string cond_name = e.attrs.at("cond_function").Get<std::string>();
  std::string body_name = e.attrs.at("body_function").Get<std::string>();

  for (int64_t i = 0; i < num_vars; ++i) {
    if (e.inputs[i].is_resource()) {
      return Unimplemented(
          "Gradients of While over resource loop variables are not "
          "supported (captured variables are fine)");
    }
  }

  TFE_ASSIGN_OR_RETURN(std::shared_ptr<GraphFunction> body,
                       ctx->functions().Find(body_name));
  TFE_ASSIGN_OR_RETURN(std::shared_ptr<GraphFunction> body_fwd,
                       BuildForwardFunction(ctx, body));
  TFE_ASSIGN_OR_RETURN(
      LoopBackwardFunction loop_backward,
      GetOrBuildLoopBackwardFunction(ctx, body_fwd,
                                     static_cast<int>(num_vars)));

  // WhileGrad inputs: every While input, then the incoming output gradients
  // for the loop vars the backward consumes.
  std::vector<Tensor> inputs = e.inputs;
  for (int idx : loop_backward.grad_output_indices) {
    Tensor grad = (idx < static_cast<int>(g.size()) && g[idx].defined())
                      ? g[idx]
                      : ops::zeros_like(e.outputs[idx]);
    inputs.push_back(grad);
  }

  AttrMap attrs;
  attrs["cond_function"] = AttrValue(cond_name);
  attrs["body_function"] = AttrValue(body_name);
  attrs["body_forward"] = AttrValue(body_fwd->name());
  attrs["body_backward"] = AttrValue(loop_backward.function->name());
  attrs["num_vars"] = AttrValue(num_vars);
  attrs["cond_captures"] = AttrValue(cond_caps);
  attrs["maximum_iterations"] = AttrValue(max_iterations);
  attrs["grad_arg_indices"] =
      AttrValue(std::vector<int64_t>(loop_backward.grad_arg_indices.begin(),
                                     loop_backward.grad_arg_indices.end()));
  attrs["grad_output_indices"] = AttrValue(
      std::vector<int64_t>(loop_backward.grad_output_indices.begin(),
                           loop_backward.grad_output_indices.end()));
  // Declared outputs: var gradients (typed like the loop vars), then one
  // accumulator per capture that receives a gradient.
  const int64_t num_outputs =
      num_vars +
      static_cast<int64_t>(loop_backward.accumulated_arg_indices.size());
  attrs["num_declared_outputs"] = AttrValue(num_outputs);
  for (int64_t i = 0; i < num_vars; ++i) {
    attrs[strings::StrCat("out_dtype_", i)] = AttrValue(e.inputs[i].dtype());
    attrs[strings::StrCat("out_shape_", i)] = AttrValue(e.inputs[i].shape());
  }
  for (size_t k = 0; k < loop_backward.accumulator_types.size(); ++k) {
    const int64_t slot = num_vars + static_cast<int64_t>(k);
    attrs[strings::StrCat("out_dtype_", slot)] =
        AttrValue(loop_backward.accumulator_types[k].dtype);
    attrs[strings::StrCat("out_shape_", slot)] =
        AttrValue(loop_backward.accumulator_types[k].shape);
  }

  TFE_ASSIGN_OR_RETURN(
      std::vector<Tensor> out,
      Dispatch({.op_name = "WhileGrad", .inputs = std::move(inputs),
                .attrs = std::move(attrs), .device = e.device}));

  std::vector<Tensor> result(e.inputs.size());
  for (int64_t i = 0; i < num_vars; ++i) result[i] = out[i];
  for (size_t k = 0; k < loop_backward.accumulated_arg_indices.size(); ++k) {
    // Body arg index -> While input slot (after vars and cond captures).
    int arg = loop_backward.accumulated_arg_indices[k];
    result[num_vars + cond_caps + (arg - num_vars)] =
        out[num_vars + static_cast<int64_t>(k)];
  }
  return result;  // cond captures receive no gradient
}

}  // namespace

namespace ops {

std::vector<Tensor> cond(const Tensor& pred, Function& true_fn,
                         Function& false_fn, const std::vector<Tensor>& args) {
  if (TraceContext::Current() == nullptr) {
    // Eager: ordinary host control flow over function calls (which is why
    // imperative code rarely needs this combinator at all).
    auto value = ScalarPred(pred);
    value.status().ThrowIfError();
    return *value ? true_fn(args) : false_fn(args);
  }
  EagerContext* ctx = EagerContext::Global();
  auto then_fn = true_fn.GetConcreteFunction(args);
  then_fn.status().ThrowIfError();
  auto else_fn = false_fn.GetConcreteFunction(args);
  else_fn.status().ThrowIfError();
  auto merged = MergeOutputTypes(**then_fn, **else_fn);
  merged.status().ThrowIfError();

  std::vector<Tensor> inputs = {pred};
  inputs.insert(inputs.end(), args.begin(), args.end());
  for (const Capture& capture : (*then_fn)->captures()) {
    inputs.push_back(capture.tensor);
  }
  for (const Capture& capture : (*else_fn)->captures()) {
    inputs.push_back(capture.tensor);
  }
  AttrMap attrs;
  attrs["then_function"] = AttrValue((*then_fn)->name());
  attrs["else_function"] = AttrValue((*else_fn)->name());
  attrs["num_args"] = AttrValue(static_cast<int64_t>(args.size()));
  attrs["then_captures"] =
      AttrValue(static_cast<int64_t>((*then_fn)->captures().size()));
  (void)ctx;
  auto result = Dispatch({.op_name = "Cond", .inputs = std::move(inputs),
                          .attrs = std::move(attrs)});
  result.status().ThrowIfError();
  return std::move(result).value();
}

std::vector<Tensor> while_loop(Function& cond_fn, Function& body_fn,
                               const std::vector<Tensor>& init_vars,
                               int64_t maximum_iterations) {
  if (TraceContext::Current() == nullptr) {
    std::vector<Tensor> vars = init_vars;
    for (int64_t i = 0; i < maximum_iterations; ++i) {
      Tensor keep_going = cond_fn(vars).at(0);
      auto value = ScalarPred(keep_going);
      value.status().ThrowIfError();
      if (!*value) return vars;
      vars = body_fn(vars);
    }
    throw RuntimeError(ErrorCode::kFailedPrecondition,
                       "while_loop exceeded maximum_iterations");
  }
  EagerContext* ctx = EagerContext::Global();
  auto cond_concrete = cond_fn.GetConcreteFunction(init_vars);
  cond_concrete.status().ThrowIfError();
  auto body_concrete = body_fn.GetConcreteFunction(init_vars);
  body_concrete.status().ThrowIfError();
  if ((*body_concrete)->num_outputs() !=
      static_cast<int>(init_vars.size())) {
    throw RuntimeError(ErrorCode::kInvalidArgument,
                       "while_loop body must return the loop variables");
  }

  std::vector<Tensor> inputs = init_vars;
  for (const Capture& capture : (*cond_concrete)->captures()) {
    inputs.push_back(capture.tensor);
  }
  for (const Capture& capture : (*body_concrete)->captures()) {
    inputs.push_back(capture.tensor);
  }
  AttrMap attrs;
  attrs["cond_function"] = AttrValue((*cond_concrete)->name());
  attrs["body_function"] = AttrValue((*body_concrete)->name());
  attrs["num_vars"] = AttrValue(static_cast<int64_t>(init_vars.size()));
  attrs["cond_captures"] =
      AttrValue(static_cast<int64_t>((*cond_concrete)->captures().size()));
  attrs["maximum_iterations"] = AttrValue(maximum_iterations);
  (void)ctx;
  auto result = Dispatch({.op_name = "While", .inputs = std::move(inputs),
                          .attrs = std::move(attrs)});
  result.status().ThrowIfError();
  return std::move(result).value();
}

std::vector<Tensor> call(const std::string& function_name,
                         const std::vector<Tensor>& args,
                         const std::vector<TypeAndShape>& output_types) {
  EagerContext* ctx = EagerContext::Global();
  std::vector<Tensor> inputs = args;
  // A registered callee may carry value captures; mirror Function's calling
  // convention and append them. An unregistered callee (the recursive
  // self-call case — the function is still being traced) must be
  // capture-free, which DefineRecursiveFunction enforces.
  if (ctx->functions().Contains(function_name)) {
    auto fn = ctx->functions().Find(function_name);
    fn.status().ThrowIfError();
    for (const Capture& capture : (*fn)->captures()) {
      inputs.push_back(capture.tensor);
    }
  }
  AttrMap attrs;
  attrs["function"] = AttrValue(function_name);
  attrs["num_original_outputs"] =
      AttrValue(static_cast<int64_t>(output_types.size()));
  attrs["num_declared_outputs"] =
      AttrValue(static_cast<int64_t>(output_types.size()));
  for (size_t i = 0; i < output_types.size(); ++i) {
    attrs[strings::StrCat("out_dtype_", i)] = AttrValue(output_types[i].dtype);
    attrs[strings::StrCat("out_shape_", i)] = AttrValue(output_types[i].shape);
  }
  auto result = Dispatch({.op_name = "Call", .inputs = std::move(inputs),
                          .attrs = std::move(attrs)});
  result.status().ThrowIfError();
  return std::move(result).value();
}

}  // namespace ops

StatusOr<std::shared_ptr<GraphFunction>> DefineRecursiveFunction(
    const std::string& name, const std::vector<TypeAndShape>& arg_types,
    const std::vector<TypeAndShape>& output_types,
    const std::function<StatusOr<std::vector<Tensor>>(
        const std::vector<Tensor>&)>& body) {
  EagerContext* ctx = EagerContext::Global();
  if (ctx->functions().Contains(name)) {
    return InvalidArgument("A graph function named '" + name +
                           "' already exists");
  }
  auto fn = std::make_shared<GraphFunction>(name);
  {
    TraceContext trace(fn, ctx);
    std::vector<Tensor> params;
    for (const TypeAndShape& type : arg_types) {
      TFE_ASSIGN_OR_RETURN(Tensor param,
                           trace.AddParameter(type.dtype, type.shape));
      params.push_back(param);
    }
    TFE_ASSIGN_OR_RETURN(std::vector<Tensor> outputs, body(params));
    if (outputs.size() != output_types.size()) {
      return InvalidArgument(
          strings::StrCat("Recursive function '", name, "' returned ",
                          outputs.size(), " outputs; declared ",
                          output_types.size()));
    }
    for (size_t i = 0; i < outputs.size(); ++i) {
      Tensor out = outputs[i];
      if (!out.is_symbolic() || out.graph() != &fn->graph()) {
        TFE_ASSIGN_OR_RETURN(out, trace.Capture(out));
      }
      if (out.dtype() != output_types[i].dtype) {
        return InvalidArgument("Recursive function '" + name +
                               "' output dtype does not match its "
                               "declared signature");
      }
      fn->outputs().push_back({out.node_id(), out.output_index()});
    }
  }
  // Self-calls dispatch with the declared signature only — captures would
  // never be appended at the recursive call sites, so forbid them. Build
  // constants with ops (fill/zeros) inside the body instead of capturing
  // eager tensors.
  if (!fn->captures().empty()) {
    return InvalidArgument(
        "Recursive function '" + name +
        "' captures tensors; pass them as explicit arguments");
  }
  // As in Function::Trace: snapshot the as-written graph before the passes
  // run so autodiff differentiates the program as written (bitwise tape
  // parity; see GraphFunction::set_autodiff_source).
  auto pristine = std::make_shared<GraphFunction>(name + "__as_written");
  TFE_RETURN_IF_ERROR(CloneGraphFunctionInto(*fn, *pristine));
  TFE_RETURN_IF_ERROR(passes::Optimize(*fn));
  fn->set_autodiff_source(std::move(pristine));
  TFE_RETURN_IF_ERROR(ctx->functions().Register(fn));
  return fn;
}

void RegisterControlFlowOps() {
  {
    OpDef def;
    def.name = "Cond";
    def.num_inputs = OpDef::kVariadic;
    def.is_stateful = true;  // branches may contain stateful ops
    def.differentiable = true;
    def.shape_fn = [](InferenceContext*) { return Status::OK(); };
    TFE_CHECK(OpRegistry::Global()->Register(std::move(def)).ok());
  }
  {
    OpDef def;
    def.name = "While";
    def.num_inputs = OpDef::kVariadic;
    def.is_stateful = true;
    def.differentiable = true;
    def.shape_fn = [](InferenceContext*) { return Status::OK(); };
    TFE_CHECK(OpRegistry::Global()->Register(std::move(def)).ok());
  }
  {
    OpDef def;
    def.name = "WhileGrad";
    def.num_inputs = OpDef::kVariadic;
    def.is_stateful = true;
    def.differentiable = true;
    def.shape_fn = [](InferenceContext*) { return Status::OK(); };
    TFE_CHECK(OpRegistry::Global()->Register(std::move(def)).ok());
  }
  kernels::RegisterKernel("Cond", CondKernel);
  kernels::RegisterKernel("While", WhileKernel);
  kernels::RegisterKernel("WhileGrad", WhileGradKernel);
  TFE_CHECK(GradientRegistry::Global()->Register("Cond", CondGradImpl).ok());
  TFE_CHECK(GradientRegistry::Global()->Register("While", WhileGradImpl).ok());
  // Second-order While gradients are a loud Unimplemented error, never a
  // silent zero.
  TFE_CHECK(GradientRegistry::Global()
                ->Register("WhileGrad",
                           [](const TapeEntry&, const std::vector<Tensor>&)
                               -> StatusOr<std::vector<Tensor>> {
                             return Unimplemented(
                                 "second-order gradients through While are "
                                 "not supported");
                           })
                .ok());
}

}  // namespace tfe
