#include "staging/trace_context.h"

#include "ops/op_registry.h"
#include "runtime/eager_context.h"
#include "support/strings.h"
#include "tensor/tensor_handle.h"

namespace tfe {

namespace {
thread_local std::vector<TraceContext*> g_trace_stack;
thread_local int g_init_scope_depth = 0;
}  // namespace

TraceContext::TraceContext(std::shared_ptr<GraphFunction> function,
                           EagerContext* ctx)
    : function_(std::move(function)), ctx_(ctx) {
  TFE_CHECK(function_ != nullptr);
  TFE_CHECK(ctx_ != nullptr);
  g_trace_stack.push_back(this);
}

TraceContext::~TraceContext() {
  TFE_CHECK(!g_trace_stack.empty() && g_trace_stack.back() == this)
      << "TraceContext destroyed out of stack order";
  g_trace_stack.pop_back();
}

TraceContext* TraceContext::Current() {
  if (g_init_scope_depth > 0 || g_trace_stack.empty()) return nullptr;
  return g_trace_stack.back();
}

int TraceContext::Depth() {
  if (g_init_scope_depth > 0) return 0;
  return static_cast<int>(g_trace_stack.size());
}

StatusOr<Tensor> TraceContext::AddParameter(DType dtype, Shape shape) {
  Graph& graph = function_->graph();
  int index = function_->num_args();
  TFE_ASSIGN_OR_RETURN(Node * node, graph.AddArg(index, dtype, shape));
  function_->arg_nodes().push_back(node->id);
  return graph.MakeSymbolic({node->id, 0});
}

StatusOr<Tensor> TraceContext::AddConstant(const Tensor& value) {
  // Embedding a value freezes it into the graph — a sync point for async
  // eager dispatch (the trace boundary of paper §5).
  TFE_RETURN_IF_ERROR(value.Materialize());
  TFE_ASSIGN_OR_RETURN(Node * node, function_->graph().AddConst(value));
  return function_->graph().MakeSymbolic({node->id, 0});
}

StatusOr<Tensor> TraceContext::Capture(const Tensor& external) {
  // Captured eager tensors only contribute dtype/shape at trace time (values
  // flow in at call time), so pending handles capture without blocking — but
  // a poisoned one must surface its deferred error at this trace boundary.
  {
    const auto& handle = external.pending_handle();
    if (handle != nullptr && handle->resolved()) {
      TFE_RETURN_IF_ERROR(handle->status());
    }
  }
  auto it = capture_index_.find(external.id());
  if (it != capture_index_.end()) {
    return function_->graph().MakeSymbolic(it->second);
  }
  if (external.is_symbolic() && external.graph() == &function_->graph()) {
    return external;  // already ours
  }
  if (external.is_symbolic()) {
    // Must come from an *enclosing* active trace; otherwise the user leaked
    // a symbol out of its graph-building context.
    bool enclosing = false;
    for (TraceContext* trace : g_trace_stack) {
      if (trace != this && &trace->function().graph() == external.graph()) {
        enclosing = true;
        break;
      }
    }
    if (!enclosing) {
      return InvalidArgument(
          "Symbolic tensor used outside its graph-building context");
    }
  }
  TFE_ASSIGN_OR_RETURN(Tensor arg,
                       AddParameter(external.dtype(), external.shape()));
  function_->captures().push_back(tfe::Capture{external});
  capture_index_.emplace(external.id(), Endpoint{arg.node_id(), 0});
  return arg;
}

StatusOr<std::vector<Tensor>> TraceContext::RecordOp(
    const std::string& op_name, const std::vector<Tensor>& inputs,
    AttrMap attrs, const std::string& requested_device,
    std::vector<TypeAndShape> pre_inferred) {
  Graph& graph = function_->graph();
  std::vector<Endpoint> endpoints;
  endpoints.reserve(inputs.size());
  for (const Tensor& input : inputs) {
    if (!input.defined()) {
      return InvalidArgument(strings::StrCat("Undefined tensor passed to ",
                                             op_name, " during tracing"));
    }
    TFE_ASSIGN_OR_RETURN(Tensor symbol, Capture(input));
    endpoints.push_back({symbol.node_id(), symbol.output_index()});
  }
  // The device requested at trace time is baked into the node; ops placed
  // explicitly inside a function override the call-time device (§4.4).
  std::string device = requested_device;
  if (device.empty()) device = DeviceScope::Current();
  TFE_ASSIGN_OR_RETURN(Node * node,
                       graph.AddNode(op_name, std::move(endpoints),
                                     std::move(attrs), std::move(pre_inferred),
                                     device));
  if (node->is_stateful()) {
    if (last_stateful_node_ >= 0) {
      graph.AddControlEdge(last_stateful_node_, node->id);
    }
    last_stateful_node_ = node->id;
  }
  std::vector<Tensor> outputs;
  outputs.reserve(node->num_outputs());
  for (int i = 0; i < node->num_outputs(); ++i) {
    outputs.push_back(graph.MakeSymbolic({node->id, i}));
  }
  return outputs;
}

InitScope::InitScope() { ++g_init_scope_depth; }
InitScope::~InitScope() { --g_init_scope_depth; }
bool InitScope::Active() { return g_init_scope_depth > 0; }

}  // namespace tfe
