// `function`: the staging decorator (paper §4.1, §4.6).
//
// Function wraps a host-language callable and behaves as "an opt-in JIT
// compiler": invoking it computes the input signature, traces the callable
// into a GraphFunction on a cache miss, and then executes a single Call
// operation through the multi-stage dispatcher. Because the call is itself
// an operation, staged functions compose, run on devices, and appear on
// gradient tapes exactly like primitives.
#ifndef TFE_STAGING_FUNCTION_H_
#define TFE_STAGING_FUNCTION_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph_function.h"
#include "ops/shape_inference.h"
#include "staging/trace_context.h"
#include "support/status.h"

namespace tfe {

class EagerContext;

class Function {
 public:
  // The traced callable: tensor arguments plus non-tensor arguments.
  // Non-tensor arguments parameterize the computation and are specialized
  // on *by value* (paper §4.6, Listing 6 — the `training=True/False`
  // example).
  using Callable = std::function<std::vector<Tensor>(
      const std::vector<Tensor>&, const AttrMap&)>;
  // Convenience form for callables that ignore non-tensor arguments.
  using TensorCallable =
      std::function<std::vector<Tensor>(const std::vector<Tensor>&)>;

  Function(Callable fn, std::string name = "fn", EagerContext* ctx = nullptr);
  Function(TensorCallable fn, std::string name = "fn",
           EagerContext* ctx = nullptr);

  // Restricts this function to a single trace with the given (possibly
  // partial) shapes (paper §4.6: "the user also has the option of
  // specifying an input signature").
  void SetInputSignature(std::vector<TypeAndShape> signature);

  // Invokes the staged computation (tracing first if needed). Throws
  // tfe::RuntimeError on failure.
  std::vector<Tensor> operator()(const std::vector<Tensor>& args,
                                 const AttrMap& non_tensor_args = {});
  // Single-output convenience.
  Tensor Call1(const std::vector<Tensor>& args,
               const AttrMap& non_tensor_args = {});

  // Traces (if needed) and returns the concrete graph function for these
  // arguments without executing it.
  StatusOr<std::shared_ptr<GraphFunction>> GetConcreteFunction(
      const std::vector<Tensor>& args, const AttrMap& non_tensor_args = {});

  // Number of traces performed so far (polymorphism introspection).
  int num_traces() const;

  const std::string& name() const { return name_; }

 private:
  StatusOr<std::shared_ptr<GraphFunction>> GetOrTrace(
      const std::vector<Tensor>& args, const AttrMap& non_tensor_args);
  StatusOr<std::shared_ptr<GraphFunction>> Trace(
      const std::vector<Tensor>& args, const AttrMap& non_tensor_args,
      bool allow_variable_creation);
  StatusOr<std::vector<Tensor>> Invoke(const std::vector<Tensor>& args,
                                       const AttrMap& non_tensor_args);

  Callable fn_;
  std::string name_;
  EagerContext* ctx_;

  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<GraphFunction>> cache_;
  std::optional<std::vector<TypeAndShape>> input_signature_;
  int trace_count_ = 0;
  bool variables_created_once_ = false;
};

// Factory mirroring the paper's decorator spelling:
//   auto f = tfe::function([](...) { ... });
Function function(Function::TensorCallable fn, std::string name = "fn");
Function function(Function::Callable fn, std::string name = "fn");

}  // namespace tfe

#endif  // TFE_STAGING_FUNCTION_H_
