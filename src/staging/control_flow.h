// Staged control flow: the tf.cond / tf.while_loop analogs (paper §4.1).
//
// Tracing bakes host-language branches into the graph and fully unrolls
// host loops; when control flow must depend on *tensor values* inside a
// staged computation, these combinators stage it as dedicated operations
// whose branch/body computations are graph functions:
//
//   * cond(pred, true_fn, false_fn, args)   — one branch runs per execution
//   * while_loop(cond_fn, body_fn, vars)    — iterates body while cond holds
//
// Eagerly they reduce to ordinary host control flow over function calls
// (which is why eager code rarely needs them — the paper's point). Inside a
// trace they record Cond / While nodes. cond() is differentiable (the
// gradient is a Cond over the branches' staged backward functions);
// while_loop() is forward-only, like much of classic TF's early story for
// loop gradients.
#ifndef TFE_STAGING_CONTROL_FLOW_H_
#define TFE_STAGING_CONTROL_FLOW_H_

#include <vector>

#include "staging/function.h"

namespace tfe {
namespace ops {

// `pred` is a scalar bool tensor. Both branches are invoked with `args` and
// must produce matching output dtypes/shapes. Throws on failure.
std::vector<Tensor> cond(const Tensor& pred, Function& true_fn,
                         Function& false_fn, const std::vector<Tensor>& args);

// Iterates `body_fn` on the loop variables while `cond_fn` (returning a
// scalar bool) holds. `body_fn` must map the loop-variable types to
// themselves. Returns the final loop variables.
std::vector<Tensor> while_loop(Function& cond_fn, Function& body_fn,
                               const std::vector<Tensor>& init_vars,
                               int64_t maximum_iterations = 1'000'000);

}  // namespace ops

// Registers Cond/While ops, kernels and the Cond gradient (called by
// EnsureOpsRegistered).
void RegisterControlFlowOps();

}  // namespace tfe

#endif  // TFE_STAGING_CONTROL_FLOW_H_
