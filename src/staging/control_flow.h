// Staged control flow: the tf.cond / tf.while_loop analogs (paper §4.1).
//
// Tracing bakes host-language branches into the graph and fully unrolls
// host loops; when control flow must depend on *tensor values* inside a
// staged computation, these combinators stage it as dedicated operations
// whose branch/body computations are graph functions:
//
//   * cond(pred, true_fn, false_fn, args)   — one branch runs per execution
//   * while_loop(cond_fn, body_fn, vars)    — iterates body while cond holds
//
// Eagerly they reduce to ordinary host control flow over function calls
// (which is why eager code rarely needs them — the paper's point). Inside a
// trace they record Cond / While nodes. Both are differentiable: cond()'s
// gradient is a Cond over the branches' staged backward functions, and
// while_loop()'s gradient replays the staged body-backward function once per
// iteration in reverse, reading per-iteration loop-variable snapshots off a
// tensor stack recorded on the forward pass. That stack is the gradient's
// memory bound: iterations × loop-state size, capped by
// `maximum_iterations` — captures are NOT snapshotted (their gradients are
// threaded through accumulators), so only the loop variables pay per-
// iteration storage.
#ifndef TFE_STAGING_CONTROL_FLOW_H_
#define TFE_STAGING_CONTROL_FLOW_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "staging/function.h"

namespace tfe {
namespace ops {

// `pred` is a scalar bool tensor. Both branches are invoked with `args` and
// must produce matching output dtypes/shapes. Throws on failure.
std::vector<Tensor> cond(const Tensor& pred, Function& true_fn,
                         Function& false_fn, const std::vector<Tensor>& args);

// Iterates `body_fn` on the loop variables while `cond_fn` (returning a
// scalar bool) holds. `body_fn` must map the loop-variable types to
// themselves. Returns the final loop variables.
std::vector<Tensor> while_loop(Function& cond_fn, Function& body_fn,
                               const std::vector<Tensor>& init_vars,
                               int64_t maximum_iterations = 1'000'000);

// Calls graph function `function_name` by *declared* signature: the callee
// does not have to exist yet, which is what lets a function body call itself
// (or a mutually-recursive sibling) while it is still being traced. Eagerly
// the callee must be registered by call time; execution depth is capped by
// TFE_MAX_CALL_DEPTH (default 64) and overflow poisons the outputs with a
// deferred FailedPrecondition. Throws on failure.
std::vector<Tensor> call(const std::string& function_name,
                         const std::vector<Tensor>& args,
                         const std::vector<TypeAndShape>& output_types);

}  // namespace ops

// Traces `body` (which may recurse via ops::call on `name` or on other
// recursive functions) into a graph function registered under exactly
// `name`, validating that the traced outputs match `output_types`.
StatusOr<std::shared_ptr<GraphFunction>> DefineRecursiveFunction(
    const std::string& name, const std::vector<TypeAndShape>& arg_types,
    const std::vector<TypeAndShape>& output_types,
    const std::function<StatusOr<std::vector<Tensor>>(
        const std::vector<Tensor>&)>& body);

// Registers Cond/While/WhileGrad ops, kernels and the Cond + While
// gradients (called by EnsureOpsRegistered).
void RegisterControlFlowOps();

}  // namespace tfe

#endif  // TFE_STAGING_CONTROL_FLOW_H_
