// TraceContext: a graph-building context (paper §4.1, §4.6).
//
// While a TraceContext is active on the current thread, the dispatcher
// records operations as graph nodes instead of executing them. Traces nest
// (tracing `outer` may trigger tracing `inner`); closed-over eager tensors,
// variables, and enclosing-trace symbols become *captured inputs*, silently
// appended to the function's parameter list (§4.6, "Lexical closure").
#ifndef TFE_STAGING_TRACE_CONTEXT_H_
#define TFE_STAGING_TRACE_CONTEXT_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/graph_function.h"
#include "support/status.h"

namespace tfe {

class EagerContext;

class TraceContext {
 public:
  // Pushes this context onto the thread-local trace stack.
  TraceContext(std::shared_ptr<GraphFunction> function, EagerContext* ctx);
  ~TraceContext();

  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

  // The innermost active trace, or nullptr when executing eagerly or inside
  // an init_scope (paper §4.7: init_scope "pauses the trace and jumps into
  // the imperative context").
  static TraceContext* Current();
  // Stack depth ignoring init_scope suppression; tapes use this to scope
  // recording to their own stage.
  static int Depth();

  GraphFunction& function() { return *function_; }
  const std::shared_ptr<GraphFunction>& function_ptr() const {
    return function_;
  }
  EagerContext* eager_context() { return ctx_; }

  // Adds an explicit function parameter and returns its symbolic tensor.
  StatusOr<Tensor> AddParameter(DType dtype, Shape shape);

  // Records one operation as a graph node; returns its symbolic outputs.
  // `pre_inferred` overrides shape inference for stub-shape ops (Call, ...).
  StatusOr<std::vector<Tensor>> RecordOp(
      const std::string& op_name, const std::vector<Tensor>& inputs,
      AttrMap attrs, const std::string& requested_device,
      std::vector<TypeAndShape> pre_inferred = {});

  // Embeds a concrete tensor as a graph constant.
  StatusOr<Tensor> AddConstant(const Tensor& value);

  // Maps an external tensor — a concrete eager tensor, a variable's resource
  // handle, or a symbol of an *enclosing* trace — to a captured parameter of
  // this function (deduplicated per external tensor).
  StatusOr<Tensor> Capture(const Tensor& external);

  // --- State-creation contract bookkeeping (paper §4.6) ---------------------
  void NoteVariableCreated() { variables_created_ = true; }
  bool variables_created() const { return variables_created_; }
  void set_allow_variable_creation(bool allow) {
    allow_variable_creation_ = allow;
  }
  bool allow_variable_creation() const { return allow_variable_creation_; }

 private:
  std::shared_ptr<GraphFunction> function_;
  EagerContext* ctx_;
  // external tensor id -> endpoint of the capture's Arg node.
  std::unordered_map<int64_t, Endpoint> capture_index_;
  // Control-dependency chain preserving program order of stateful ops.
  int last_stateful_node_ = -1;
  bool variables_created_ = false;
  bool allow_variable_creation_ = true;
};

// Escape hatch (paper §4.7): while alive, tracing is suppressed and
// operations execute imperatively, even under an active TraceContext.
class InitScope {
 public:
  InitScope();
  ~InitScope();

  InitScope(const InitScope&) = delete;
  InitScope& operator=(const InitScope&) = delete;

  static bool Active();
};

}  // namespace tfe

#endif  // TFE_STAGING_TRACE_CONTEXT_H_
