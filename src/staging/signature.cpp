#include "staging/signature.h"

#include "support/strings.h"

namespace tfe {

namespace {

StatusOr<std::string> TensorKey(const Tensor& tensor) {
  if (!tensor.defined()) {
    return InvalidArgument("Undefined tensor in function arguments");
  }
  if (tensor.is_resource()) {
    // Variables are encoded by identity: two different variables must not
    // share a trace (their storage bindings differ).
    return strings::StrCat("res#", tensor.resource()->resource_id());
  }
  return TypeShapeKey(tensor.dtype(), tensor.shape());
}

}  // namespace

std::string TypeShapeKey(DType dtype, const Shape& shape) {
  return strings::StrCat(DTypeName(dtype), shape.ToString());
}

StatusOr<std::string> ComputeSignature(const std::vector<Tensor>& args,
                                       const AttrMap& non_tensor_args,
                                       const std::string& device) {
  std::string key = "dev:" + device + "|";
  for (const Tensor& arg : args) {
    TFE_ASSIGN_OR_RETURN(std::string piece, TensorKey(arg));
    key += piece + ";";
  }
  if (!non_tensor_args.empty()) {
    key += "|" + AttrMapToString(non_tensor_args);
  }
  return key;
}

StatusOr<std::string> ComputeExplicitSignature(
    const std::vector<TypeAndShape>& signature,
    const std::vector<Tensor>& args, const AttrMap& non_tensor_args,
    const std::string& device) {
  if (args.size() != signature.size()) {
    return InvalidArgument(strings::StrCat(
        "Function with input signature of ", signature.size(),
        " tensors called with ", args.size()));
  }
  for (size_t i = 0; i < args.size(); ++i) {
    const Tensor& arg = args[i];
    if (!arg.defined()) return InvalidArgument("Undefined argument");
    if (arg.is_resource()) {
      return InvalidArgument(
          "Explicit input signatures do not cover resource arguments");
    }
    if (arg.dtype() != signature[i].dtype ||
        !signature[i].shape.IsCompatibleWith(arg.shape())) {
      return InvalidArgument(strings::StrCat(
          "Argument ", i, " (", DTypeName(arg.dtype()),
          arg.shape().ToString(), ") does not match input signature ",
          DTypeName(signature[i].dtype), signature[i].shape.ToString()));
    }
  }
  // One key for every compatible call.
  std::string key = "dev:" + device + "|sig";
  for (const TypeAndShape& spec : signature) {
    key += strings::StrCat(DTypeName(spec.dtype), spec.shape.ToString(), ";");
  }
  if (!non_tensor_args.empty()) {
    key += "|" + AttrMapToString(non_tensor_args);
  }
  return key;
}

}  // namespace tfe
