#include "staging/function.h"

#include "autodiff/function_grad.h"
#include "autodiff/tape.h"
#include "graph/passes.h"
#include "profiler/profiler.h"
#include "runtime/dispatch.h"
#include "runtime/eager_context.h"
#include "staging/signature.h"
#include "support/strings.h"

namespace tfe {

Function::Function(Callable fn, std::string name, EagerContext* ctx)
    : fn_(std::move(fn)), name_(std::move(name)), ctx_(ctx) {}

Function::Function(TensorCallable fn, std::string name, EagerContext* ctx)
    : fn_([inner = std::move(fn)](const std::vector<Tensor>& args,
                                  const AttrMap&) { return inner(args); }),
      name_(std::move(name)),
      ctx_(ctx) {}

void Function::SetInputSignature(std::vector<TypeAndShape> signature) {
  std::lock_guard<std::mutex> lock(mu_);
  TFE_CHECK(cache_.empty())
      << "SetInputSignature must be called before the first invocation";
  input_signature_ = std::move(signature);
}

int Function::num_traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_count_;
}

StatusOr<std::shared_ptr<GraphFunction>> Function::GetConcreteFunction(
    const std::vector<Tensor>& args, const AttrMap& non_tensor_args) {
  return GetOrTrace(args, non_tensor_args);
}

StatusOr<std::shared_ptr<GraphFunction>> Function::GetOrTrace(
    const std::vector<Tensor>& args, const AttrMap& non_tensor_args) {
  std::string key;
  {
    std::lock_guard<std::mutex> lock(mu_);
    StatusOr<std::string> key_or =
        input_signature_.has_value()
            ? ComputeExplicitSignature(*input_signature_, args,
                                       non_tensor_args, DeviceScope::Current())
            : ComputeSignature(args, non_tensor_args, DeviceScope::Current());
    if (!key_or.ok()) return key_or.status();
    key = std::move(key_or).value();
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      static profiler::Counter* hits =
          profiler::Metrics().GetCounter("staging.cache_hits");
      hits->Increment();
      if (profiler::enabled()) {
        profiler::RecordInstant(profiler::EventKind::kTraceCacheHit,
                                profiler::Intern(name_));
      }
      return it->second;
    }
  }
  static profiler::Counter* misses =
      profiler::Metrics().GetCounter("staging.cache_misses");
  misses->Increment();
  if (profiler::enabled()) {
    profiler::RecordInstant(profiler::EventKind::kTraceCacheMiss,
                            profiler::Intern(name_));
  }

  // Cache miss: trace outside the lock (tracing can recursively invoke other
  // functions). First trace may create state; the state-creation contract
  // (paper §4.6) then requires a second, creation-free trace that records
  // the steady-state behavior.
  TFE_ASSIGN_OR_RETURN(
      std::shared_ptr<GraphFunction> traced,
      Trace(args, non_tensor_args, /*allow_variable_creation=*/true));

  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = cache_.emplace(key, traced);
  return it->second;
}

StatusOr<std::shared_ptr<GraphFunction>> Function::Trace(
    const std::vector<Tensor>& args, const AttrMap& non_tensor_args,
    bool allow_variable_creation) {
  EagerContext* ctx = ctx_ != nullptr ? ctx_ : EagerContext::Global();
  ctx->stats().traces.fetch_add(1, std::memory_order_relaxed);
  profiler::Scope trace_span(profiler::EventKind::kTraceStage, name_);

  auto graph_fn = std::make_shared<GraphFunction>(
      ctx->functions().UniqueName(name_));

  bool created_variables = false;
  {
    TraceContext trace(graph_fn, ctx);
    {
      std::lock_guard<std::mutex> lock(mu_);
      trace.set_allow_variable_creation(allow_variable_creation &&
                                        !variables_created_once_);
    }

    // Placeholder parameters: from the explicit signature when present,
    // otherwise specialized to the concrete argument types. Two passes keep
    // the parameter-list invariant `[explicit args..., captures...]`:
    // non-resource args become explicit parameters first, then resource
    // args join the capture list (a variable passed explicitly behaves the
    // same as one closed over — bound by reference to its storage).
    std::vector<Tensor> parameters(args.size());
    for (size_t i = 0; i < args.size(); ++i) {
      if (args[i].is_resource()) continue;
      DType dtype = args[i].dtype();
      Shape shape = args[i].shape();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (input_signature_.has_value()) {
          dtype = (*input_signature_)[i].dtype;
          shape = (*input_signature_)[i].shape;
        }
      }
      TFE_ASSIGN_OR_RETURN(parameters[i], trace.AddParameter(dtype, shape));
    }
    for (size_t i = 0; i < args.size(); ++i) {
      if (!args[i].is_resource()) continue;
      TFE_ASSIGN_OR_RETURN(parameters[i], trace.Capture(args[i]));
    }

    std::vector<Tensor> returns = fn_(parameters, non_tensor_args);

    for (Tensor& ret : returns) {
      if (!ret.defined()) {
        return InvalidArgument("Traced function returned an undefined tensor");
      }
      if (!ret.is_symbolic() || ret.graph() != &graph_fn->graph()) {
        // Returning an eager value (or an outer symbol) from a traced
        // function: capture it so it becomes a pass-through output.
        TFE_ASSIGN_OR_RETURN(ret, trace.Capture(ret));
      }
      graph_fn->outputs().push_back({ret.node_id(), ret.output_index()});
    }
    created_variables = trace.variables_created();
  }

  if (created_variables) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      variables_created_once_ = true;
    }
    // Re-trace: state now exists, so this trace records the steady-state
    // computation. Any further creation attempt fails inside Variable.
    return Trace(args, non_tensor_args, /*allow_variable_creation=*/false);
  }

  // Snapshot the trace before optimization: autodiff differentiates the
  // program as written so gradient accumulation matches the eager tape
  // bitwise (see GraphFunction::set_autodiff_source).
  auto pristine =
      std::make_shared<GraphFunction>(graph_fn->name() + "__as_written");
  TFE_RETURN_IF_ERROR(CloneGraphFunctionInto(*graph_fn, *pristine));
  TFE_RETURN_IF_ERROR(passes::Optimize(*graph_fn));
  graph_fn->set_autodiff_source(std::move(pristine));
  TFE_RETURN_IF_ERROR(ctx->functions().Register(graph_fn));
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++trace_count_;
  }
  return graph_fn;
}

StatusOr<std::vector<Tensor>> Function::Invoke(
    const std::vector<Tensor>& args, const AttrMap& non_tensor_args) {
  EagerContext* ctx = ctx_ != nullptr ? ctx_ : EagerContext::Global();
  TFE_ASSIGN_OR_RETURN(std::shared_ptr<GraphFunction> graph_fn,
                       GetOrTrace(args, non_tensor_args));

  // Assemble call inputs: explicit arguments + lexically captured values
  // ("silently passed to the graph function at call-time", §4.6). Resource
  // parameters were turned into captures at trace time, so explicit resource
  // args are skipped here and flow through the capture list instead.
  std::vector<Tensor> call_inputs;
  call_inputs.reserve(graph_fn->num_args());
  for (const Tensor& arg : args) {
    if (!arg.is_resource()) call_inputs.push_back(arg);
  }
  for (const Capture& capture : graph_fn->captures()) {
    call_inputs.push_back(capture.tensor);
  }

  // Calling a function that uses variables counts as accessing them: watch
  // every resource input on the active tapes (paper §4.3) before deciding
  // whether a differentiable forward variant is needed.
  for (const Tensor& input : call_inputs) {
    if (input.defined() && input.is_resource()) {
      GradientTape::WatchResourceOnAllTapes(input);
    }
  }

  std::string callee = graph_fn->name();
  int num_original_outputs = graph_fn->num_outputs();
  if (GradientTape::WouldRecord(call_inputs)) {
    // Paper §4.2: "The first time a graph function is called when a tape is
    // both active and watching one of its inputs, we build a 'forward'
    // version of this function that returns any intermediate values needed
    // for the backward step."
    TFE_ASSIGN_OR_RETURN(std::shared_ptr<GraphFunction> forward,
                         BuildForwardFunction(ctx, graph_fn));
    callee = forward->name();
  }

  AttrMap attrs;
  attrs["function"] = AttrValue(callee);
  attrs["num_original_outputs"] =
      AttrValue(static_cast<int64_t>(num_original_outputs));
  TFE_ASSIGN_OR_RETURN(
      std::vector<Tensor> outputs,
      Dispatch({.op_name = "Call", .inputs = std::move(call_inputs),
                .attrs = std::move(attrs), .ctx = ctx}));
  outputs.resize(num_original_outputs);
  return outputs;
}

std::vector<Tensor> Function::operator()(const std::vector<Tensor>& args,
                                         const AttrMap& non_tensor_args) {
  auto result = Invoke(args, non_tensor_args);
  result.status().ThrowIfError();
  return std::move(result).value();
}

Tensor Function::Call1(const std::vector<Tensor>& args,
                       const AttrMap& non_tensor_args) {
  std::vector<Tensor> outputs = (*this)(args, non_tensor_args);
  TFE_CHECK_EQ(outputs.size(), 1u);
  return outputs[0];
}

Function function(Function::TensorCallable fn, std::string name) {
  return Function(std::move(fn), std::move(name));
}

Function function(Function::Callable fn, std::string name) {
  return Function(std::move(fn), std::move(name));
}

}  // namespace tfe
