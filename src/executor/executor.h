// The dataflow executor: runs a GraphFunction's nodes in dependency order,
// in parallel where the DAG allows (paper §5: the staged runtime "runs
// kernels in parallel when possible").
//
// The executor is also the virtual-time engine for staged execution: each
// node retires on its device's timeline no earlier than its dependencies,
// which models inter-op parallelism limits and — on the simulated TPU — the
// whole-function compilation discount (DESIGN.md §2).
#ifndef TFE_EXECUTOR_EXECUTOR_H_
#define TFE_EXECUTOR_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "graph/graph_function.h"
#include "support/status.h"
#include "tensor/tensor.h"

namespace tfe {

class Device;
class EagerContext;

class Executor {
 public:
  explicit Executor(EagerContext* ctx) : ctx_(ctx) {}

  struct Result {
    std::vector<Tensor> outputs;
    // Virtual time at which all outputs (and all side effects) retire.
    uint64_t finish_ns = 0;
  };

  // Executes `function` with `args` (explicit parameters followed by
  // captures, all concrete). Nodes without an explicit device request run on
  // `default_device`. `start_ns` is the virtual time at which inputs are
  // available; `compiled` marks execution inside a whole-function
  // accelerator compilation unit. `parallel` chooses the thread-pool
  // ready-queue engine (top-level calls) or inline sequential execution
  // (nested calls, which run on pool threads and must not block on the
  // pool). `rng_stream_base` seeds the deterministic per-node RNG streams:
  // kernels driving a nested run pass their own KernelContext stream so
  // nesting stays deterministic; 0 reserves a fresh stream from the context.
  StatusOr<Result> Run(const GraphFunction& function,
                       const std::vector<Tensor>& args,
                       Device* default_device, uint64_t start_ns,
                       bool compiled, bool parallel = true,
                       uint64_t rng_stream_base = 0);

  // True while the calling thread is executing a graph node — nested
  // function calls use this to switch to inline execution so pool threads
  // never block on the pool.
  static bool InExecutor();

 private:
  EagerContext* ctx_;
};

}  // namespace tfe

#endif  // TFE_EXECUTOR_EXECUTOR_H_
