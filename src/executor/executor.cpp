#include "executor/executor.h"

#include <atomic>
#include <condition_variable>
#include <set>
#include <mutex>

#include "graph/memory_planner.h"
#include "profiler/profiler.h"
#include "runtime/eager_context.h"
#include "support/strings.h"

namespace tfe {

namespace {

struct NodeState {
  std::atomic<int> pending{0};
  std::vector<Tensor> outputs;
  uint64_t completion_ns = 0;
};

// Shared run state for one (parallel) executor invocation.
struct RunState {
  std::mutex mu;
  std::condition_variable done_cv;
  int completed = 0;
  int in_flight = 0;  // scheduled or running nodes
  Status first_error;
  bool failed = false;
};

thread_local int g_executor_depth = 0;

struct ScopedExecutorDepth {
  ScopedExecutorDepth() { ++g_executor_depth; }
  ~ScopedExecutorDepth() { --g_executor_depth; }
};

}  // namespace

bool Executor::InExecutor() { return g_executor_depth > 0; }

StatusOr<Executor::Result> Executor::Run(const GraphFunction& function,
                                         const std::vector<Tensor>& args,
                                         Device* default_device,
                                         uint64_t start_ns, bool compiled,
                                         bool parallel,
                                         uint64_t rng_stream_base) {
  const Graph& graph = function.graph();
  const int n = graph.num_nodes();
  if (static_cast<int>(args.size()) != function.num_args()) {
    return InvalidArgument(strings::StrCat(
        "Function ", function.name(), " expects ", function.num_args(),
        " arguments (including captures), got ", args.size()));
  }
  if (default_device == nullptr) default_device = ctx_->HostCpu();

  static profiler::Counter* executor_runs =
      profiler::Metrics().GetCounter("executor.runs");
  executor_runs->Increment();
  profiler::Scope run_span(profiler::EventKind::kExecutorRun, function.name());
  run_span.set_arg(n);

  // Staged execution is a sync point for async eager dispatch (paper §5):
  // pending arguments materialize before the dataflow run so graph kernels
  // never see unresolved handles, and a poisoned argument surfaces its
  // original Status as this call's error.
  for (const Tensor& arg : args) {
    TFE_RETURN_IF_ERROR(arg.Materialize());
  }

  // Each node gets a deterministic Philox stream derived from this run's
  // base and its (topological-order) id, fixed before any node executes —
  // ready-queue scheduling cannot change which stream a random op draws
  // from. SplitMix64 spreads bases so per-run id ranges don't overlap.
  const uint64_t rng_base = random::SplitMix64(
      rng_stream_base != 0 ? rng_stream_base : ctx_->NextRngStream());

  // Static memory plan (graph/memory_planner.h): when it applies, one slab
  // acquisition covers every planned intermediate of this run. Declared
  // before `states` so the per-node tensors — which may be views into the
  // slab — are destroyed first, and the slab's return-to-pool use-count
  // proof can pass.
  std::unique_ptr<memplan::RunPlan> plan_run =
      memplan::BeginRun(function, default_device);

  std::vector<NodeState> states(n);
  // Map arg index -> node id for fast Arg lookup.
  std::vector<int> arg_of_node(n, -1);
  for (int i = 0; i < function.num_args(); ++i) {
    arg_of_node[function.arg_nodes()[i]] = i;
  }

  // Executes one node; returns non-OK to abort the run.
  auto exec_node = [&](int id) -> Status {
    ScopedExecutorDepth depth_guard;
    const Node& node = graph.node(id);
    NodeState& state = states[id];

    uint64_t ready_ns = start_ns;
    for (const Endpoint& e : node.inputs) {
      ready_ns = std::max(ready_ns, states[e.node_id].completion_ns);
    }
    for (int dep : node.control_inputs) {
      ready_ns = std::max(ready_ns, states[dep].completion_ns);
    }

    if (node.op == "Arg") {
      int index = arg_of_node[id];
      TFE_CHECK_GE(index, 0);
      const Tensor& arg = args[index];
      if (!arg.defined() || arg.is_symbolic()) {
        return InvalidArgument(strings::StrCat(
            "Function ", function.name(), " argument ", index,
            " is not a concrete tensor"));
      }
      const TypeAndShape& expected = node.outputs[0];
      if (arg.dtype() != expected.dtype && expected.dtype != DType::kInvalid) {
        return InvalidArgument(strings::StrCat(
            "Function ", function.name(), " argument ", index, " has dtype ",
            DTypeName(arg.dtype()), ", expected ",
            DTypeName(expected.dtype)));
      }
      if (!arg.is_resource() && !expected.shape.IsCompatibleWith(arg.shape())) {
        return InvalidArgument(strings::StrCat(
            "Function ", function.name(), " argument ", index, " has shape ",
            arg.shape().ToString(), ", expected ",
            expected.shape.ToString()));
      }
      state.outputs = {arg};
      state.completion_ns = ready_ns;
      return Status::OK();
    }
    if (node.op == "Const") {
      state.outputs = {node.constant_value};
      state.completion_ns = ready_ns;
      return Status::OK();
    }

    Device* device = default_device;
    if (!node.requested_device.empty()) {
      TFE_ASSIGN_OR_RETURN(device,
                           ctx_->devices().FindDevice(node.requested_device));
    }

    std::vector<Tensor> inputs;
    inputs.reserve(node.inputs.size());
    for (const Endpoint& e : node.inputs) {
      inputs.push_back(states[e.node_id].outputs.at(e.index));
    }

    ctx_->stats().executor_nodes.fetch_add(1, std::memory_order_relaxed);
    uint64_t node_stream =
        rng_base + static_cast<uint64_t>(node.rng_id >= 0 ? node.rng_id : id);
    if (node_stream == 0) node_stream = 1;  // 0 means "unassigned"
    // Installed even when this run is unplanned: a null binding masks any
    // enclosing planned run, so kernels of nested (Call/While/Cond) runs
    // never consult the outer plan. ExecuteKernel runs the kernel
    // synchronously on this thread, which is what makes the thread-local
    // binding exact.
    memplan::ScopedNode plan_scope(plan_run.get(), id);
    TFE_ASSIGN_OR_RETURN(
        EagerContext::KernelRun run,
        ctx_->ExecuteKernel(node.op, inputs, node.attrs, device, compiled,
                            ready_ns, node_stream));
    if (run.completion_ns != 0) {
      state.completion_ns = run.completion_ns;
    } else {
      uint64_t total_ns = run.device_ns;
      if (!compiled) total_ns += device->cost_params().executor_node_ns;
      state.completion_ns =
          total_ns > 0 ? device->timeline().Schedule(ready_ns, total_ns)
                       : ready_ns;
    }
    state.outputs = std::move(run.outputs);
    return Status::OK();
  };

  if (!parallel) {
    // Nodes are appended in creation order during tracing, so ids are a
    // valid topological order.
    for (int id = 0; id < n; ++id) {
      TFE_RETURN_IF_ERROR(exec_node(id));
    }
  } else {
    // Ready-queue execution over the context's thread pool.
    std::vector<std::vector<int>> consumers(n);
    for (int id = 0; id < n; ++id) {
      const Node& node = graph.node(id);
      int pending = static_cast<int>(node.inputs.size()) +
                    static_cast<int>(node.control_inputs.size());
      states[id].pending.store(pending, std::memory_order_relaxed);
      for (const Endpoint& e : node.inputs) {
        consumers[e.node_id].push_back(id);
      }
      for (int dep : node.control_inputs) {
        consumers[dep].push_back(id);
      }
    }

    RunState run_state;

    // Defined before use in the recursive lambda below. Lives until the wait
    // below observes every launched node finished, so reference captures in
    // scheduled closures stay valid.
    std::function<void(int)> run_node = [&](int id) {
      {
        std::lock_guard<std::mutex> lock(run_state.mu);
        if (run_state.failed) {
          if (--run_state.in_flight == 0) run_state.done_cv.notify_all();
          return;
        }
      }
      Status status = exec_node(id);
      std::vector<int> ready;
      if (status.ok()) {
        for (int consumer : consumers[id]) {
          if (states[consumer].pending.fetch_sub(
                  1, std::memory_order_acq_rel) == 1) {
            ready.push_back(consumer);
          }
        }
      }
      {
        std::lock_guard<std::mutex> lock(run_state.mu);
        if (!status.ok() && !run_state.failed) {
          run_state.failed = true;
          run_state.first_error = status;
        }
        ++run_state.completed;
        run_state.in_flight += static_cast<int>(ready.size()) - 1;
        if (run_state.completed == n ||
            (run_state.failed && run_state.in_flight == 0)) {
          run_state.done_cv.notify_all();
        }
      }
      // Run one successor inline (cache-friendly), schedule the rest.
      for (size_t i = 1; i < ready.size(); ++i) {
        int successor = ready[i];
        ctx_->executor_pool().Schedule([&run_node, successor] {
          run_node(successor);
        });
      }
      if (!ready.empty()) run_node(ready[0]);
    };

    std::vector<int> initial;
    for (int id = 0; id < n; ++id) {
      if (states[id].pending.load(std::memory_order_relaxed) == 0) {
        initial.push_back(id);
      }
    }
    run_state.in_flight = static_cast<int>(initial.size());
    for (size_t i = 1; i < initial.size(); ++i) {
      int id = initial[i];
      ctx_->executor_pool().Schedule([&run_node, id] { run_node(id); });
    }
    if (!initial.empty()) run_node(initial[0]);

    std::unique_lock<std::mutex> lock(run_state.mu);
    run_state.done_cv.wait(lock, [&] {
      return run_state.completed == n ||
             (run_state.failed && run_state.in_flight == 0);
    });
    if (run_state.failed) return run_state.first_error;
  }

  Result result;
  result.finish_ns = start_ns;
  result.outputs.reserve(function.num_outputs());
  std::set<std::pair<int, int>> seen_endpoints;
  for (const Endpoint& e : function.outputs()) {
    Tensor output = states[e.node_id].outputs.at(e.index);
    // A graph endpoint returned through several output slots must surface
    // as several tensor identities: gradient tapes key on tensor ids, and a
    // shared id would double-count seeded gradients (forward variants list
    // user outputs and intermediates in one list).
    if (!seen_endpoints.insert({e.node_id, e.index}).second &&
        output.defined() && !output.is_resource() && !output.is_symbolic()) {
      output = output.is_opaque()
                   ? Tensor::Opaque(output.dtype(), output.shape(),
                                    output.device())
                   : Tensor::Concrete(output.dtype(), output.shape(),
                                      output.buffer(), output.device());
    }
    result.outputs.push_back(std::move(output));
    result.finish_ns = std::max(result.finish_ns, states[e.node_id].completion_ns);
  }
  // Side effects count toward completion: a caller synchronizing on the
  // function must observe its assignments.
  for (int id = 0; id < n; ++id) {
    if (graph.node(id).is_stateful()) {
      result.finish_ns = std::max(result.finish_ns, states[id].completion_ns);
    }
  }
  // Offer this run's escaping outputs to the next run via the plan's
  // forwarding pool (claimable once the caller drops them).
  memplan::FinishRun(plan_run.get(), function, result.outputs);
  return result;
}

}  // namespace tfe
