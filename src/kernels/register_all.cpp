// One-stop registration of op defs, kernels and gradients.
#include <mutex>

#include "autodiff/gradient_registry.h"
#include "ops/op_registry.h"

namespace tfe {

namespace data {
void RegisterDataOps();
}  // namespace data

void RegisterHashTableOps();      // state/hash_table.cpp
void RegisterControlFlowOps();    // staging/control_flow.cpp

namespace kernels {
void RegisterElementwiseKernels();
void RegisterFusedElementwiseKernels();
void RegisterMatMulKernels();
void RegisterConvKernels();
void RegisterPoolingKernels();
void RegisterBatchNormKernels();
void RegisterReductionKernels();
void RegisterShapeOpKernels();
void RegisterSoftmaxKernels();
void RegisterRandomKernels();
void RegisterVariableKernels();
void RegisterControlKernels();
void RegisterCallKernels();
void RegisterHostFuncKernels();
}  // namespace kernels

void EnsureOpsRegistered() {
  static std::once_flag once;
  std::call_once(once, [] {
    RegisterAllOpDefs();
    kernels::RegisterElementwiseKernels();
    kernels::RegisterFusedElementwiseKernels();
    kernels::RegisterMatMulKernels();
    kernels::RegisterConvKernels();
    kernels::RegisterPoolingKernels();
    kernels::RegisterBatchNormKernels();
    kernels::RegisterReductionKernels();
    kernels::RegisterShapeOpKernels();
    kernels::RegisterSoftmaxKernels();
    kernels::RegisterRandomKernels();
    kernels::RegisterVariableKernels();
    kernels::RegisterControlKernels();
    kernels::RegisterCallKernels();
    kernels::RegisterHostFuncKernels();
    data::RegisterDataOps();
    RegisterHashTableOps();
    RegisterControlFlowOps();
    RegisterAllGradients();
  });
}

}  // namespace tfe
