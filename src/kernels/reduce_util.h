// Canonical trailing-strip reduction used by both the standalone reduction
// kernels (reduction.cpp) and the fused map-reduce epilogue
// (fused_elementwise.cpp). Keeping the accumulation geometry in one place is
// what makes fused and unfused reductions bitwise identical, serial or
// sharded:
//
//   - A strip of reduce_count elements is split into fixed 4096-element
//     chunks (the last one short). Each chunk is accumulated serially in
//     element order into its own partial.
//   - Partials are combined by a stride-doubling tree whose shape depends
//     only on the chunk count — never on how many shards ran — so parallel
//     execution reproduces the serial result bit for bit.
//   - Strips of at most one chunk skip the tree entirely (a single serial
//     accumulation), which keeps small reductions on the exact op-at-a-time
//     sequence they always had.
//   - Mean accumulates like Sum and divides by the strip length at the end.
#ifndef TFE_KERNELS_REDUCE_UTIL_H_
#define TFE_KERNELS_REDUCE_UTIL_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace tfe {
namespace kernels {

constexpr int64_t kReduceChunkElements = 4096;

enum class ReduceAccumKind { kSum, kMax, kMin };

template <typename T>
inline T ReduceInit(ReduceAccumKind kind) {
  switch (kind) {
    case ReduceAccumKind::kMax:
      return std::numeric_limits<T>::lowest();
    case ReduceAccumKind::kMin:
      return std::numeric_limits<T>::max();
    case ReduceAccumKind::kSum:
      break;
  }
  return T(0);
}

// Folds `len` elements read at `p[i * stride]` into `acc`, in element order.
template <typename T>
inline void ReduceAccumulate(ReduceAccumKind kind, T& acc, const T* p,
                             int64_t stride, int64_t len) {
  switch (kind) {
    case ReduceAccumKind::kSum:
      for (int64_t i = 0; i < len; ++i) acc += p[i * stride];
      break;
    case ReduceAccumKind::kMax:
      for (int64_t i = 0; i < len; ++i) {
        T v = p[i * stride];
        if (v > acc) acc = v;
      }
      break;
    case ReduceAccumKind::kMin:
      for (int64_t i = 0; i < len; ++i) {
        T v = p[i * stride];
        if (v < acc) acc = v;
      }
      break;
  }
}

inline int64_t ReduceChunkCount(int64_t reduce_count) {
  return reduce_count <= kReduceChunkElements
             ? 1
             : (reduce_count + kReduceChunkElements - 1) / kReduceChunkElements;
}

// Stride-doubling tree over the chunk partials; geometry depends only on n.
template <typename T>
inline T ReduceCombineTree(ReduceAccumKind kind, T* partials, int64_t n) {
  for (int64_t stride = 1; stride < n; stride *= 2) {
    for (int64_t i = 0; i + stride < n; i += 2 * stride) {
      switch (kind) {
        case ReduceAccumKind::kSum:
          partials[i] += partials[i + stride];
          break;
        case ReduceAccumKind::kMax:
          if (partials[i + stride] > partials[i]) partials[i] = partials[i + stride];
          break;
        case ReduceAccumKind::kMin:
          if (partials[i + stride] < partials[i]) partials[i] = partials[i + stride];
          break;
      }
    }
  }
  return n > 0 ? partials[0] : T(0);
}

// Reduces one contiguous strip with the canonical chunk/tree geometry.
template <typename T>
inline T ReduceStripSerial(ReduceAccumKind kind, const T* strip, int64_t rc) {
  if (rc <= kReduceChunkElements) {
    T acc = ReduceInit<T>(kind);
    ReduceAccumulate(kind, acc, strip, 1, rc);
    return acc;
  }
  const int64_t nc = ReduceChunkCount(rc);
  std::vector<T> partials(static_cast<size_t>(nc));
  for (int64_t c = 0; c < nc; ++c) {
    const int64_t begin = c * kReduceChunkElements;
    const int64_t len = std::min(kReduceChunkElements, rc - begin);
    T acc = ReduceInit<T>(kind);
    ReduceAccumulate(kind, acc, strip + begin, 1, len);
    partials[static_cast<size_t>(c)] = acc;
  }
  return ReduceCombineTree(kind, partials.data(), nc);
}

}  // namespace kernels
}  // namespace tfe

#endif  // TFE_KERNELS_REDUCE_UTIL_H_
