// Scalar functors for the elementwise kernels. Shared between the per-op
// kernels (elementwise.cpp) and the FusedElementwise interpreter so fused
// execution applies the *identical* expressions — the bitwise-agreement
// guarantee the fusion tests assert rests on this file being the single
// source of truth.
#ifndef TFE_KERNELS_ELEMENTWISE_FUNCTORS_H_
#define TFE_KERNELS_ELEMENTWISE_FUNCTORS_H_

#include <cmath>

namespace tfe {
namespace kernels {
namespace functors {

#define TFE_BINARY_FUNCTOR(NAME, EXPR)         \
  struct NAME {                                \
    template <typename T>                      \
    static T Apply(T x, T y) {                 \
      return (EXPR);                           \
    }                                          \
  }

TFE_BINARY_FUNCTOR(AddF, x + y);
TFE_BINARY_FUNCTOR(SubF, x - y);
TFE_BINARY_FUNCTOR(MulF, x* y);
TFE_BINARY_FUNCTOR(DivF, x / y);
TFE_BINARY_FUNCTOR(MaximumF, x > y ? x : y);
TFE_BINARY_FUNCTOR(MinimumF, x < y ? x : y);
TFE_BINARY_FUNCTOR(SquaredDifferenceF, (x - y) * (x - y));
TFE_BINARY_FUNCTOR(PowF, std::pow(x, y));

#define TFE_COMPARE_FUNCTOR(NAME, OP)          \
  struct NAME {                                \
    template <typename T>                      \
    static bool Apply(T x, T y) {              \
      return x OP y;                           \
    }                                          \
  }

TFE_COMPARE_FUNCTOR(EqualF, ==);
TFE_COMPARE_FUNCTOR(NotEqualF, !=);
TFE_COMPARE_FUNCTOR(LessF, <);
TFE_COMPARE_FUNCTOR(LessEqualF, <=);
TFE_COMPARE_FUNCTOR(GreaterF, >);
TFE_COMPARE_FUNCTOR(GreaterEqualF, >=);

#define TFE_UNARY_FUNCTOR(NAME, EXPR)          \
  struct NAME {                                \
    template <typename T>                      \
    static T Apply(T x) {                      \
      return (EXPR);                           \
    }                                          \
  }

TFE_UNARY_FUNCTOR(NegF, -x);
TFE_UNARY_FUNCTOR(AbsF, x < T(0) ? -x : x);
TFE_UNARY_FUNCTOR(SquareF, x* x);
TFE_UNARY_FUNCTOR(SignF, x > T(0) ? T(1) : (x < T(0) ? T(-1) : T(0)));
TFE_UNARY_FUNCTOR(ReluF, x > T(0) ? x : T(0));
TFE_UNARY_FUNCTOR(ExpF, std::exp(x));
TFE_UNARY_FUNCTOR(LogF, std::log(x));
TFE_UNARY_FUNCTOR(SqrtF, std::sqrt(x));
TFE_UNARY_FUNCTOR(RsqrtF, T(1) / std::sqrt(x));
TFE_UNARY_FUNCTOR(TanhF, std::tanh(x));
TFE_UNARY_FUNCTOR(SigmoidF, T(1) / (T(1) + std::exp(-x)));
TFE_UNARY_FUNCTOR(SinF, std::sin(x));
TFE_UNARY_FUNCTOR(CosF, std::cos(x));
TFE_UNARY_FUNCTOR(ReciprocalF, T(1) / x);
TFE_UNARY_FUNCTOR(FloorF, std::floor(x));

#undef TFE_BINARY_FUNCTOR
#undef TFE_COMPARE_FUNCTOR
#undef TFE_UNARY_FUNCTOR

}  // namespace functors
}  // namespace kernels
}  // namespace tfe

#endif  // TFE_KERNELS_ELEMENTWISE_FUNCTORS_H_
