// FusedBatchNorm (NHWC, per-channel) and its gradient.
//
// Training mode normalizes with batch statistics and reports them (the
// caller maintains running averages); inference mode uses the provided
// moving mean/variance.
#include <cmath>

#include "kernels/kernel_util.h"

namespace tfe {
namespace kernels {
namespace {

constexpr double kDefaultEpsilon = 1e-3;

// inputs: x [n,h,w,c], scale [c], offset [c], mean [c], variance [c]
// outputs: y, batch_mean, batch_variance
Status FusedBatchNormKernel(KernelContext* ctx) {
  const Tensor& x = ctx->input(0);
  const Tensor& scale = ctx->input(1);
  const Tensor& offset = ctx->input(2);
  const Tensor& moving_mean = ctx->input(3);
  const Tensor& moving_var = ctx->input(4);
  const bool training = ctx->GetAttrOr<bool>("is_training", true);
  const double epsilon = ctx->GetAttrOr<double>("epsilon", kDefaultEpsilon);
  if (x.shape().rank() != 4) {
    return InvalidArgument("FusedBatchNorm expects NHWC input");
  }
  const int64_t channels = x.shape().dim(3);
  const int64_t rows = x.num_elements() / channels;
  if (scale.num_elements() != channels || offset.num_elements() != channels) {
    return InvalidArgument("FusedBatchNorm scale/offset must be [channels]");
  }

  Tensor y = ctx->AllocateOutput(0, x.dtype(), x.shape());
  Tensor out_mean = ctx->AllocateOutput(1, x.dtype(), Shape({channels}));
  Tensor out_var = ctx->AllocateOutput(2, x.dtype(), Shape({channels}));

  TFE_SWITCH_FLOAT(x.dtype(), T, {
    const T* in = x.data<T>();
    const T* gamma = scale.data<T>();
    const T* beta = offset.data<T>();
    T* out = y.mutable_data<T>();
    T* mean = out_mean.mutable_data<T>();
    T* variance = out_var.mutable_data<T>();

    if (training) {
      for (int64_t c = 0; c < channels; ++c) {
        mean[c] = T(0);
        variance[c] = T(0);
      }
      for (int64_t r = 0; r < rows; ++r) {
        const T* row = in + r * channels;
        for (int64_t c = 0; c < channels; ++c) mean[c] += row[c];
      }
      for (int64_t c = 0; c < channels; ++c) mean[c] /= static_cast<T>(rows);
      for (int64_t r = 0; r < rows; ++r) {
        const T* row = in + r * channels;
        for (int64_t c = 0; c < channels; ++c) {
          T d = row[c] - mean[c];
          variance[c] += d * d;
        }
      }
      for (int64_t c = 0; c < channels; ++c) {
        variance[c] /= static_cast<T>(rows);
      }
    } else {
      for (int64_t c = 0; c < channels; ++c) {
        mean[c] = moving_mean.data<T>()[c];
        variance[c] = moving_var.data<T>()[c];
      }
    }

    std::vector<T> inv_std(channels);
    for (int64_t c = 0; c < channels; ++c) {
      inv_std[c] = T(1) / std::sqrt(variance[c] + static_cast<T>(epsilon));
    }
    for (int64_t r = 0; r < rows; ++r) {
      const T* row = in + r * channels;
      T* out_row = out + r * channels;
      for (int64_t c = 0; c < channels; ++c) {
        out_row[c] = gamma[c] * (row[c] - mean[c]) * inv_std[c] + beta[c];
      }
    }
  });
  return Status::OK();
}

// inputs: dy, x, scale, saved_mean, saved_variance (training-mode batch
// statistics). outputs: dx, dscale, doffset.
Status FusedBatchNormGradKernel(KernelContext* ctx) {
  const Tensor& dy = ctx->input(0);
  const Tensor& x = ctx->input(1);
  const Tensor& scale = ctx->input(2);
  const Tensor& saved_mean = ctx->input(3);
  const Tensor& saved_var = ctx->input(4);
  const double epsilon = ctx->GetAttrOr<double>("epsilon", kDefaultEpsilon);
  const int64_t channels = x.shape().dim(3);
  const int64_t rows = x.num_elements() / channels;

  Tensor dx = ctx->AllocateOutput(0, x.dtype(), x.shape());
  Tensor dscale = ctx->AllocateOutput(1, x.dtype(), Shape({channels}));
  Tensor doffset = ctx->AllocateOutput(2, x.dtype(), Shape({channels}));

  TFE_SWITCH_FLOAT(x.dtype(), T, {
    const T* grad = dy.data<T>();
    const T* in = x.data<T>();
    const T* gamma = scale.data<T>();
    const T* mean = saved_mean.data<T>();
    const T* variance = saved_var.data<T>();
    T* din = dx.mutable_data<T>();
    T* dgamma = dscale.mutable_data<T>();
    T* dbeta = doffset.mutable_data<T>();

    std::vector<T> inv_std(channels), sum_dy(channels, T(0)),
        sum_dy_xhat(channels, T(0));
    for (int64_t c = 0; c < channels; ++c) {
      inv_std[c] = T(1) / std::sqrt(variance[c] + static_cast<T>(epsilon));
    }
    for (int64_t r = 0; r < rows; ++r) {
      const T* dy_row = grad + r * channels;
      const T* x_row = in + r * channels;
      for (int64_t c = 0; c < channels; ++c) {
        T xhat = (x_row[c] - mean[c]) * inv_std[c];
        sum_dy[c] += dy_row[c];
        sum_dy_xhat[c] += dy_row[c] * xhat;
      }
    }
    for (int64_t c = 0; c < channels; ++c) {
      dgamma[c] = sum_dy_xhat[c];
      dbeta[c] = sum_dy[c];
    }
    const T inv_rows = T(1) / static_cast<T>(rows);
    for (int64_t r = 0; r < rows; ++r) {
      const T* dy_row = grad + r * channels;
      const T* x_row = in + r * channels;
      T* dx_row = din + r * channels;
      for (int64_t c = 0; c < channels; ++c) {
        T xhat = (x_row[c] - mean[c]) * inv_std[c];
        dx_row[c] = gamma[c] * inv_std[c] *
                    (dy_row[c] - sum_dy[c] * inv_rows -
                     xhat * sum_dy_xhat[c] * inv_rows);
      }
    }
  });
  return Status::OK();
}

}  // namespace

void RegisterBatchNormKernels() {
  RegisterKernel("FusedBatchNorm", FusedBatchNormKernel);
  RegisterKernel("FusedBatchNormGrad", FusedBatchNormGradKernel);
}

}  // namespace kernels
}  // namespace tfe
