// Variable (resource) kernels and the checkpoint save/restore ops.
#include <filesystem>
#include <fstream>

#include "kernels/kernel_util.h"
#include "state/variable.h"
#include "support/strings.h"

namespace tfe {
namespace kernels {
namespace {

StatusOr<VariableStorage*> GetStorage(const Tensor& handle) {
  if (!handle.defined() || !handle.is_resource()) {
    return InvalidArgument("Expected a resource tensor");
  }
  auto* storage = dynamic_cast<VariableStorage*>(handle.resource().get());
  if (storage == nullptr) {
    return InvalidArgument("Resource is not a variable");
  }
  return storage;
}

Status ReadVariableKernel(KernelContext* ctx) {
  TFE_ASSIGN_OR_RETURN(VariableStorage * storage, GetStorage(ctx->input(0)));
  if (!storage->initialized()) {
    return FailedPrecondition("Variable '" + storage->name() +
                              "' is uninitialized");
  }
  // Each read is a fresh tensor identity sharing the (immutable) buffer:
  // gradient tapes must treat two reads as two edges from the variable, or
  // d(v*v)/dv would double-count.
  Tensor value = storage->value();
  if (value.is_opaque()) {
    ctx->SetOutput(0, Tensor::Opaque(value.dtype(), value.shape(),
                                     storage->device()));
  } else {
    ctx->SetOutput(0, Tensor::Concrete(value.dtype(), value.shape(),
                                       value.buffer(), storage->device()));
  }
  return Status::OK();
}

Status AssignVariableKernel(KernelContext* ctx) {
  TFE_ASSIGN_OR_RETURN(VariableStorage * storage, GetStorage(ctx->input(0)));
  return storage->Assign(ctx->input(1));
}

// sign = +1 for AssignAdd, -1 for AssignSub.
template <int kSign>
Status AssignArithmeticKernel(KernelContext* ctx) {
  TFE_ASSIGN_OR_RETURN(VariableStorage * storage, GetStorage(ctx->input(0)));
  const Tensor& delta = ctx->input(1);
  if (!storage->initialized()) {
    return FailedPrecondition("Variable '" + storage->name() +
                              "' is uninitialized");
  }
  Tensor current = storage->value();
  if (delta.dtype() != current.dtype() || delta.shape() != current.shape()) {
    return InvalidArgument("AssignAdd/Sub shape or dtype mismatch for '" +
                           storage->name() + "'");
  }
  if (current.is_opaque() || delta.is_opaque()) {
    // Timing-only simulation: contents are not materialized.
    return storage->Assign(
        Tensor::Opaque(current.dtype(), current.shape(), storage->device()));
  }
  Tensor next = Tensor::Empty(current.dtype(), current.shape(),
                              storage->device());
  TFE_SWITCH_NUMERIC(current.dtype(), T, {
    const T* a = current.data<T>();
    const T* b = delta.data<T>();
    T* out = next.mutable_data<T>();
    const int64_t count = current.num_elements();
    for (int64_t i = 0; i < count; ++i) {
      out[i] = kSign > 0 ? a[i] + b[i] : a[i] - b[i];
    }
  });
  return storage->Assign(std::move(next));
}

std::string TensorFilePath(const std::string& prefix,
                           const std::string& name) {
  std::string sanitized = name;
  for (char& c : sanitized) {
    if (c == '/' || c == ':') c = '_';
  }
  return prefix + "/" + sanitized + ".tensor";
}

constexpr uint32_t kTensorFileMagic = 0x54464554;  // "TFET"

// input: value; attrs: prefix, name. Writes one tensor file under the
// checkpoint prefix (paper §4.3: saving "sends the value to a save op").
Status SaveTensorKernel(KernelContext* ctx) {
  TFE_ASSIGN_OR_RETURN(auto prefix, ctx->GetAttr<std::string>("prefix"));
  TFE_ASSIGN_OR_RETURN(auto name, ctx->GetAttr<std::string>("name"));
  const Tensor& value = ctx->input(0);
  if (value.is_opaque()) {
    return FailedPrecondition(
        "Cannot checkpoint an opaque (timing-only simulation) tensor");
  }
  std::error_code ec;
  std::filesystem::create_directories(prefix, ec);
  std::ofstream out(TensorFilePath(prefix, name), std::ios::binary);
  if (!out) return Unavailable("Cannot open checkpoint file for " + name);
  uint32_t magic = kTensorFileMagic;
  int32_t dtype = static_cast<int32_t>(value.dtype());
  int32_t rank = value.shape().rank();
  out.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
  out.write(reinterpret_cast<const char*>(&dtype), sizeof(dtype));
  out.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
  for (int64_t dim : value.shape().dims()) {
    out.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
  }
  out.write(static_cast<const char*>(value.raw_data()),
            static_cast<std::streamsize>(value.num_elements() *
                                         DTypeSize(value.dtype())));
  if (!out) return Unavailable("Write failed for checkpoint entry " + name);
  return Status::OK();
}

// attrs: prefix, name, dtype, shape. Produces the restored tensor (paper
// §4.3: restoring "assigns from a restore operation").
Status RestoreTensorKernel(KernelContext* ctx) {
  TFE_ASSIGN_OR_RETURN(auto prefix, ctx->GetAttr<std::string>("prefix"));
  TFE_ASSIGN_OR_RETURN(auto name, ctx->GetAttr<std::string>("name"));
  std::ifstream in(TensorFilePath(prefix, name), std::ios::binary);
  if (!in) return NotFound("No checkpoint entry for " + name);
  uint32_t magic = 0;
  int32_t dtype_raw = 0;
  int32_t rank = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in.read(reinterpret_cast<char*>(&dtype_raw), sizeof(dtype_raw));
  in.read(reinterpret_cast<char*>(&rank), sizeof(rank));
  if (!in || magic != kTensorFileMagic || rank < 0 || rank > 32) {
    return Internal("Corrupt checkpoint entry for " + name);
  }
  std::vector<int64_t> dims(rank);
  for (int32_t i = 0; i < rank; ++i) {
    in.read(reinterpret_cast<char*>(&dims[i]), sizeof(dims[i]));
  }
  DType dtype = static_cast<DType>(dtype_raw);
  Shape shape(dims);
  Tensor out = ctx->AllocateOutput(0, dtype, shape);
  in.read(static_cast<char*>(out.raw_mutable_data()),
          static_cast<std::streamsize>(shape.num_elements() *
                                       DTypeSize(dtype)));
  if (!in) return Internal("Truncated checkpoint entry for " + name);
  return Status::OK();
}

}  // namespace

void RegisterVariableKernels() {
  RegisterKernel("ReadVariableOp", ReadVariableKernel);
  RegisterKernel("AssignVariableOp", AssignVariableKernel);
  RegisterKernel("AssignAddVariableOp", AssignArithmeticKernel<1>);
  RegisterKernel("AssignSubVariableOp", AssignArithmeticKernel<-1>);
  RegisterKernel("SaveTensor", SaveTensorKernel);
  RegisterKernel("RestoreTensor", RestoreTensorKernel);
}

}  // namespace kernels
}  // namespace tfe
