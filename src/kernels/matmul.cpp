// MatMul kernel: blocked row-major GEMM with optional operand transposes.
#include <algorithm>

#include "kernels/kernel_util.h"

namespace tfe {
namespace kernels {
namespace {

// C[m,n] += A[m,k] * B[k,n], with A/B addressed through lda/ldb and optional
// logical transposition folded into the index functions by the caller.
//
// Sharded across the intra-op pool by i0 row block. Every row's accumulation
// order (p0 ascending, then p ascending) is the same under any shard split,
// so the parallel product is bitwise identical to the serial one.
template <typename T>
void Gemm(EagerContext* ectx, const T* a, const T* b, T* c, int64_t m,
          int64_t n, int64_t k, bool transpose_a, bool transpose_b) {
  auto a_at = [&](int64_t i, int64_t p) {
    return transpose_a ? a[p * m + i] : a[i * k + p];
  };
  auto b_at = [&](int64_t p, int64_t j) {
    return transpose_b ? b[j * k + p] : b[p * n + j];
  };
  constexpr int64_t kBlock = 64;
  const int64_t row_blocks = (m + kBlock - 1) / kBlock;
  // Stay serial below ~2M multiply-adds: sharding overhead beats the win.
  const int64_t min_blocks_per_shard =
      m * n * k >= (int64_t{2} << 20) ? 1 : row_blocks;
  ParallelFor(ectx, row_blocks, min_blocks_per_shard,
              [&](int64_t block_begin, int64_t block_end) {
    for (int64_t block = block_begin; block < block_end; ++block) {
      const int64_t i0 = block * kBlock;
      const int64_t i1 = std::min(i0 + kBlock, m);
      for (int64_t p0 = 0; p0 < k; p0 += kBlock) {
        int64_t p1 = std::min(p0 + kBlock, k);
        for (int64_t i = i0; i < i1; ++i) {
          for (int64_t p = p0; p < p1; ++p) {
            T aval = a_at(i, p);
            if (aval == T(0)) continue;
            T* c_row = c + i * n;
            for (int64_t j = 0; j < n; ++j) {
              c_row[j] += aval * b_at(p, j);
            }
          }
        }
      }
    }
  });
}

Status MatMulKernel(KernelContext* ctx) {
  const Tensor& a = ctx->input(0);
  const Tensor& b = ctx->input(1);
  if (a.dtype() != b.dtype()) return InvalidArgument("MatMul dtype mismatch");
  if (a.shape().rank() != 2 || b.shape().rank() != 2) {
    return InvalidArgument("MatMul requires rank-2 tensors");
  }
  bool ta = ctx->GetAttrOr<bool>("transpose_a", false);
  bool tb = ctx->GetAttrOr<bool>("transpose_b", false);
  int64_t m = a.shape().dim(ta ? 1 : 0);
  int64_t ka = a.shape().dim(ta ? 0 : 1);
  int64_t kb = b.shape().dim(tb ? 1 : 0);
  int64_t n = b.shape().dim(tb ? 0 : 1);
  if (ka != kb) {
    return InvalidArgument("MatMul inner dimension mismatch: " +
                           a.shape().ToString() + " x " + b.shape().ToString());
  }
  Tensor out = ctx->AllocateOutput(0, a.dtype(), Shape({m, n}));
  TFE_SWITCH_FLOAT(a.dtype(), T, {
    Gemm<T>(ctx->eager_context(), a.data<T>(), b.data<T>(),
            out.mutable_data<T>(), m, n, ka, ta, tb);
  });
  return Status::OK();
}

}  // namespace

void RegisterMatMulKernels() { RegisterKernel("MatMul", MatMulKernel); }

}  // namespace kernels
}  // namespace tfe
