#include "kernels/fused_elementwise.h"

#include <algorithm>
#include <array>
#include <map>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kernels/elementwise_functors.h"
#include "kernels/kernel_util.h"
#include "kernels/reduce_util.h"
#include "profiler/metrics.h"
#include "profiler/profiler.h"
#include "runtime/eager_context.h"

namespace tfe {
namespace kernels {

namespace {

std::vector<int64_t> RowMajorStrides(const std::vector<int64_t>& dims) {
  std::vector<int64_t> strides(dims.size());
  int64_t acc = 1;
  for (int i = static_cast<int>(dims.size()) - 1; i >= 0; --i) {
    strides[i] = acc;
    acc *= dims[i];
  }
  return strides;
}

int64_t ProductOf(const std::vector<int64_t>& dims) {
  int64_t acc = 1;
  for (int64_t d : dims) acc *= d;
  return acc;
}

constexpr int64_t kMaxAccessRank = 16;

Status ValidateAccess(const MicroAccess& access, int64_t count,
                      const char* what) {
  const std::string where = std::string("FusedElementwise ") + what;
  if (access.kind != MicroAccessKind::kStrided) {
    if (!access.dims.empty() || !access.strides.empty()) {
      return InvalidArgument(where + " carries dims without a strided kind");
    }
    return Status::OK();
  }
  if (access.dims.size() != access.strides.size() ||
      static_cast<int64_t>(access.dims.size()) > kMaxAccessRank) {
    return InvalidArgument(where + " descriptor malformed");
  }
  int64_t product = 1;
  for (size_t d = 0; d < access.dims.size(); ++d) {
    if (access.dims[d] < 1 || access.strides[d] < 0) {
      return InvalidArgument(where + " descriptor out of range");
    }
    product *= access.dims[d];
  }
  if (product != count) {
    return InvalidArgument(where +
                           " descriptor does not cover the evaluation space");
  }
  return Status::OK();
}

// Largest offset a strided walk can touch (0 for the other kinds' element 0).
int64_t MaxAccessOffset(const MicroAccess& access) {
  int64_t off = 0;
  for (size_t d = 0; d < access.dims.size(); ++d) {
    off += (access.dims[d] - 1) * access.strides[d];
  }
  return off;
}

void EncodeAccess(const MicroAccess& access, std::vector<int64_t>* out) {
  out->push_back(static_cast<int64_t>(access.kind));
  if (access.kind == MicroAccessKind::kStrided) {
    out->push_back(static_cast<int64_t>(access.dims.size()));
    for (int64_t d : access.dims) out->push_back(d);
    for (int64_t s : access.strides) out->push_back(s);
  }
}

}  // namespace

std::vector<int64_t> MicroProgram::Encode() const {
  std::vector<int64_t> encoded;
  if (!extended) {
    encoded.reserve(2 + insts.size() * 3 + 1 + outputs.size());
    encoded.push_back(num_operands);
    encoded.push_back(static_cast<int64_t>(insts.size()));
    for (const MicroInst& inst : insts) {
      encoded.push_back(static_cast<int64_t>(inst.opcode));
      encoded.push_back(inst.a);
      encoded.push_back(inst.b);
    }
    encoded.push_back(static_cast<int64_t>(outputs.size()));
    for (int32_t reg : outputs) encoded.push_back(reg);
    return encoded;
  }
  encoded.push_back(compact ? kMicroProgramMagicV3 : kMicroProgramMagic);
  encoded.push_back(num_operands);
  encoded.push_back(static_cast<int64_t>(eval_dims.size()));
  for (int64_t d : eval_dims) encoded.push_back(d);
  if (compact) encoded.push_back(num_rows);
  for (const MicroOperandSlot& slot : slots) {
    encoded.push_back(slot.input);
    EncodeAccess(slot.access, &encoded);
  }
  encoded.push_back(static_cast<int64_t>(insts.size()));
  for (const MicroInst& inst : insts) {
    encoded.push_back(static_cast<int64_t>(inst.opcode));
    encoded.push_back(inst.a);
    encoded.push_back(inst.b);
    if (compact) encoded.push_back(inst.dst);
  }
  encoded.push_back(static_cast<int64_t>(output_specs.size()));
  for (const MicroOutputSpec& spec : output_specs) {
    encoded.push_back(spec.reg);
    encoded.push_back(static_cast<int64_t>(spec.shape.size()));
    for (int64_t d : spec.shape) encoded.push_back(d);
    EncodeAccess(spec.store, &encoded);
  }
  encoded.push_back(static_cast<int64_t>(reduce.kind));
  if (reduce.kind != MicroReduceKind::kNone) {
    encoded.push_back(reduce.src);
    encoded.push_back(reduce.reduce_count);
    encoded.push_back(static_cast<int64_t>(reduce.shape.size()));
    for (int64_t d : reduce.shape) encoded.push_back(d);
  }
  return encoded;
}

StatusOr<MicroProgram> MicroProgram::Decode(
    const std::vector<int64_t>& encoded) {
  MicroProgram program;
  size_t pos = 0;
  auto next = [&]() -> StatusOr<int64_t> {
    if (pos >= encoded.size()) {
      return InvalidArgument("Truncated FusedElementwise program");
    }
    return encoded[pos++];
  };
  const bool v3 = !encoded.empty() && encoded[0] == kMicroProgramMagicV3;
  const bool extended =
      v3 || (!encoded.empty() && encoded[0] == kMicroProgramMagic);
  int64_t eval_count = 0;
  if (extended) {
    pos = 1;
    program.extended = true;
    program.compact = v3;
    TFE_ASSIGN_OR_RETURN(program.num_operands, next());
    if (program.num_operands < 1) {
      return InvalidArgument("Malformed FusedElementwise program header");
    }
    TFE_ASSIGN_OR_RETURN(int64_t eval_rank, next());
    if (eval_rank < 0 || eval_rank > kMaxAccessRank) {
      return InvalidArgument("FusedElementwise evaluation rank out of range");
    }
    eval_count = 1;
    for (int64_t d = 0; d < eval_rank; ++d) {
      TFE_ASSIGN_OR_RETURN(int64_t dim, next());
      if (dim < 0) {
        return InvalidArgument("FusedElementwise evaluation dim out of range");
      }
      program.eval_dims.push_back(dim);
      eval_count *= dim;
    }
    if (v3) {
      TFE_ASSIGN_OR_RETURN(program.num_rows, next());
      if (program.num_rows < 0 || program.num_rows > 4096) {
        return InvalidArgument("FusedElementwise row count out of range");
      }
    }
    auto decode_access = [&](const char* what) -> StatusOr<MicroAccess> {
      MicroAccess access;
      TFE_ASSIGN_OR_RETURN(int64_t kind, next());
      if (kind < static_cast<int64_t>(MicroAccessKind::kAuto) ||
          kind > static_cast<int64_t>(MicroAccessKind::kStrided)) {
        return InvalidArgument("FusedElementwise access kind out of range");
      }
      access.kind = static_cast<MicroAccessKind>(kind);
      if (access.kind == MicroAccessKind::kStrided) {
        TFE_ASSIGN_OR_RETURN(int64_t rank, next());
        if (rank < 0 || rank > kMaxAccessRank) {
          return InvalidArgument("FusedElementwise access rank out of range");
        }
        for (int64_t d = 0; d < rank; ++d) {
          TFE_ASSIGN_OR_RETURN(int64_t dim, next());
          access.dims.push_back(dim);
        }
        for (int64_t d = 0; d < rank; ++d) {
          TFE_ASSIGN_OR_RETURN(int64_t stride, next());
          access.strides.push_back(stride);
        }
      }
      TFE_RETURN_IF_ERROR(ValidateAccess(access, eval_count, what));
      return access;
    };
    for (int64_t s = 0; s < program.num_operands; ++s) {
      MicroOperandSlot slot;
      TFE_ASSIGN_OR_RETURN(slot.input, next());
      if (slot.input < 0) {
        return InvalidArgument("FusedElementwise slot input out of range");
      }
      TFE_ASSIGN_OR_RETURN(slot.access, decode_access("operand slot"));
      program.slots.push_back(std::move(slot));
    }
    TFE_ASSIGN_OR_RETURN(int64_t num_insts, next());
    if (num_insts < 0) {
      return InvalidArgument("Malformed FusedElementwise program header");
    }
    // v3 rows may be read only after some earlier instruction wrote them —
    // rows the compiler retired and reassigned must never leak stale data.
    std::vector<bool> row_written(v3 ? program.num_rows : 0, false);
    for (int64_t i = 0; i < num_insts; ++i) {
      MicroInst inst;
      TFE_ASSIGN_OR_RETURN(int64_t opcode, next());
      if (opcode < static_cast<int64_t>(MicroOpCode::kAdd) ||
          opcode > static_cast<int64_t>(MicroOpCode::kCast)) {
        return InvalidArgument("Unknown FusedElementwise opcode");
      }
      inst.opcode = static_cast<MicroOpCode>(opcode);
      TFE_ASSIGN_OR_RETURN(int64_t a, next());
      TFE_ASSIGN_OR_RETURN(int64_t b, next());
      if (v3) {
        const int64_t limit = program.num_operands + program.num_rows;
        auto readable = [&](int64_t r) {
          return r >= 0 && r < limit &&
                 (r < program.num_operands ||
                  row_written[r - program.num_operands]);
        };
        if (!readable(a) || !readable(b)) {
          return InvalidArgument("FusedElementwise register out of range");
        }
        TFE_ASSIGN_OR_RETURN(int64_t dst, next());
        if (dst < program.num_operands || dst >= limit) {
          return InvalidArgument(
              "FusedElementwise destination register out of range");
        }
        inst.dst = static_cast<int32_t>(dst);
        row_written[dst - program.num_operands] = true;
      } else {
        const int64_t limit = program.num_operands + i;
        if (a < 0 || a >= limit || b < 0 || b >= limit) {
          return InvalidArgument("FusedElementwise register out of range");
        }
        inst.dst = static_cast<int32_t>(program.num_operands + i);
      }
      inst.a = static_cast<int32_t>(a);
      inst.b = static_cast<int32_t>(b);
      program.insts.push_back(inst);
    }
    if (!v3) program.num_rows = static_cast<int64_t>(program.insts.size());
    TFE_ASSIGN_OR_RETURN(int64_t num_outputs, next());
    if (num_outputs < 0) {
      return InvalidArgument("Malformed FusedElementwise output count");
    }
    for (int64_t o = 0; o < num_outputs; ++o) {
      MicroOutputSpec spec;
      TFE_ASSIGN_OR_RETURN(int64_t reg, next());
      if (reg < 0 || reg >= program.num_registers() ||
          (v3 && reg >= program.num_operands &&
           !row_written[reg - program.num_operands])) {
        return InvalidArgument("FusedElementwise output register out of range");
      }
      spec.reg = static_cast<int32_t>(reg);
      TFE_ASSIGN_OR_RETURN(int64_t shape_rank, next());
      if (shape_rank < 0 || shape_rank > kMaxAccessRank) {
        return InvalidArgument("FusedElementwise output rank out of range");
      }
      for (int64_t d = 0; d < shape_rank; ++d) {
        TFE_ASSIGN_OR_RETURN(int64_t dim, next());
        if (dim < 0) {
          return InvalidArgument("FusedElementwise output dim out of range");
        }
        spec.shape.push_back(dim);
      }
      TFE_ASSIGN_OR_RETURN(spec.store, decode_access("output store"));
      const int64_t shape_count = ProductOf(spec.shape);
      switch (spec.store.kind) {
        case MicroAccessKind::kScalar:
          if (shape_count != 1) {
            return InvalidArgument("FusedElementwise scalar output not scalar");
          }
          break;
        case MicroAccessKind::kStrided:
          if (MaxAccessOffset(spec.store) >= shape_count) {
            return InvalidArgument(
                "FusedElementwise output store escapes the output buffer");
          }
          break;
        default:
          if (shape_count != eval_count) {
            return InvalidArgument(
                "FusedElementwise contiguous output shape mismatch");
          }
          break;
      }
      program.outputs.push_back(spec.reg);
      program.output_specs.push_back(std::move(spec));
    }
    TFE_ASSIGN_OR_RETURN(int64_t reduce_kind, next());
    if (reduce_kind < static_cast<int64_t>(MicroReduceKind::kNone) ||
        reduce_kind > static_cast<int64_t>(MicroReduceKind::kMin)) {
      return InvalidArgument("FusedElementwise reduce kind out of range");
    }
    program.reduce.kind = static_cast<MicroReduceKind>(reduce_kind);
    if (program.reduce.kind != MicroReduceKind::kNone) {
      TFE_ASSIGN_OR_RETURN(int64_t src, next());
      if (src < 0 || src >= program.num_registers() ||
          (v3 && src >= program.num_operands &&
           !row_written[src - program.num_operands])) {
        return InvalidArgument("FusedElementwise reduce register out of range");
      }
      program.reduce.src = static_cast<int32_t>(src);
      TFE_ASSIGN_OR_RETURN(program.reduce.reduce_count, next());
      if (program.reduce.reduce_count < 1) {
        return InvalidArgument("FusedElementwise reduce count out of range");
      }
      TFE_ASSIGN_OR_RETURN(int64_t out_rank, next());
      if (out_rank < 0 || out_rank > kMaxAccessRank) {
        return InvalidArgument("FusedElementwise reduce rank out of range");
      }
      for (int64_t d = 0; d < out_rank; ++d) {
        TFE_ASSIGN_OR_RETURN(int64_t dim, next());
        if (dim < 0) {
          return InvalidArgument("FusedElementwise reduce dim out of range");
        }
        program.reduce.shape.push_back(dim);
      }
      if (ProductOf(program.reduce.shape) * program.reduce.reduce_count !=
          eval_count) {
        return InvalidArgument(
            "FusedElementwise reduce does not tile the evaluation space");
      }
    }
    if (program.insts.empty() && program.outputs.empty() &&
        program.reduce.kind == MicroReduceKind::kNone) {
      return InvalidArgument("FusedElementwise program computes nothing");
    }
    if (pos != encoded.size()) {
      return InvalidArgument("Trailing data in FusedElementwise program");
    }
    return program;
  }

  TFE_ASSIGN_OR_RETURN(program.num_operands, next());
  TFE_ASSIGN_OR_RETURN(int64_t num_insts, next());
  if (program.num_operands < 0 || num_insts <= 0) {
    return InvalidArgument("Malformed FusedElementwise program header");
  }
  program.insts.reserve(num_insts);
  for (int64_t i = 0; i < num_insts; ++i) {
    MicroInst inst;
    TFE_ASSIGN_OR_RETURN(int64_t opcode, next());
    if (opcode < static_cast<int64_t>(MicroOpCode::kAdd) ||
        opcode > static_cast<int64_t>(MicroOpCode::kCast)) {
      return InvalidArgument("Unknown FusedElementwise opcode");
    }
    inst.opcode = static_cast<MicroOpCode>(opcode);
    TFE_ASSIGN_OR_RETURN(int64_t a, next());
    TFE_ASSIGN_OR_RETURN(int64_t b, next());
    // Instruction i may read operand registers and earlier results only.
    const int64_t limit = program.num_operands + i;
    if (a < 0 || a >= limit || b < 0 || b >= limit) {
      return InvalidArgument("FusedElementwise register out of range");
    }
    inst.a = static_cast<int32_t>(a);
    inst.b = static_cast<int32_t>(b);
    inst.dst = static_cast<int32_t>(program.num_operands + i);
    program.insts.push_back(inst);
  }
  program.num_rows = static_cast<int64_t>(program.insts.size());
  TFE_ASSIGN_OR_RETURN(int64_t num_outputs, next());
  if (num_outputs < 0) {
    return InvalidArgument("Malformed FusedElementwise output count");
  }
  for (int64_t i = 0; i < num_outputs; ++i) {
    TFE_ASSIGN_OR_RETURN(int64_t reg, next());
    if (reg < 0 || reg >= program.num_registers()) {
      return InvalidArgument("FusedElementwise output register out of range");
    }
    program.outputs.push_back(static_cast<int32_t>(reg));
  }
  if (pos != encoded.size()) {
    return InvalidArgument("Trailing data in FusedElementwise program");
  }
  return program;
}

bool MicroOpCodeFor(const std::string& op_name, MicroOpCode* code) {
  static const std::unordered_map<std::string, MicroOpCode>* kMap =
      new std::unordered_map<std::string, MicroOpCode>{
          {"Add", MicroOpCode::kAdd},
          {"Sub", MicroOpCode::kSub},
          {"Mul", MicroOpCode::kMul},
          {"Div", MicroOpCode::kDiv},
          {"Maximum", MicroOpCode::kMaximum},
          {"Minimum", MicroOpCode::kMinimum},
          {"SquaredDifference", MicroOpCode::kSquaredDifference},
          {"Pow", MicroOpCode::kPow},
          {"Neg", MicroOpCode::kNeg},
          {"Abs", MicroOpCode::kAbs},
          {"Square", MicroOpCode::kSquare},
          {"Sign", MicroOpCode::kSign},
          {"Relu", MicroOpCode::kRelu},
          {"Exp", MicroOpCode::kExp},
          {"Log", MicroOpCode::kLog},
          {"Sqrt", MicroOpCode::kSqrt},
          {"Rsqrt", MicroOpCode::kRsqrt},
          {"Tanh", MicroOpCode::kTanh},
          {"Sigmoid", MicroOpCode::kSigmoid},
          {"Sin", MicroOpCode::kSin},
          {"Cos", MicroOpCode::kCos},
          {"Reciprocal", MicroOpCode::kReciprocal},
          {"Floor", MicroOpCode::kFloor},
          {"Cast", MicroOpCode::kCast},
      };
  auto it = kMap->find(op_name);
  if (it == kMap->end()) return false;
  *code = it->second;
  return true;
}

int MicroOpArity(MicroOpCode code) {
  return code <= MicroOpCode::kPow ? 2 : 1;
}

bool MicroOpSupports(MicroOpCode code, DType dtype) {
  const bool numeric = dtype == DType::kFloat32 || dtype == DType::kFloat64 ||
                       dtype == DType::kInt32 || dtype == DType::kInt64;
  if (!numeric) return false;
  const bool is_float = dtype == DType::kFloat32 || dtype == DType::kFloat64;
  switch (code) {
    case MicroOpCode::kPow:
    case MicroOpCode::kExp:
    case MicroOpCode::kLog:
    case MicroOpCode::kSqrt:
    case MicroOpCode::kRsqrt:
    case MicroOpCode::kTanh:
    case MicroOpCode::kSigmoid:
    case MicroOpCode::kSin:
    case MicroOpCode::kCos:
    case MicroOpCode::kReciprocal:
    case MicroOpCode::kFloor:
      return is_float;
    default:
      return true;
  }
}

bool MicroLayoutOp(const std::string& op_name) {
  return op_name == "Transpose" || op_name == "Reshape" ||
         op_name == "ExpandDims" || op_name == "Squeeze";
}

bool MicroReduceKindFor(const std::string& op_name, MicroReduceKind* kind) {
  if (op_name == "Sum") {
    *kind = MicroReduceKind::kSum;
  } else if (op_name == "Mean") {
    *kind = MicroReduceKind::kMean;
  } else if (op_name == "Max") {
    *kind = MicroReduceKind::kMax;
  } else if (op_name == "Min") {
    *kind = MicroReduceKind::kMin;
  } else {
    return false;
  }
  return true;
}

bool BroadcastsTo(const Shape& shape, const Shape& out) {
  if (shape.rank() > out.rank()) return false;
  for (int i = 0; i < shape.rank(); ++i) {
    const int64_t sd = shape.dims()[shape.rank() - 1 - i];
    const int64_t od = out.dims()[out.rank() - 1 - i];
    if (sd != od && sd != 1) return false;
  }
  return true;
}

// ---- Run compiler ----------------------------------------------------------

namespace {

// Where a member's value lives relative to the flat evaluation index.
// Flat: the member's buffer offset IS the evaluation index. Otherwise the
// evaluation walks the member's dims in permuted order: evaluation dim d
// advances the member's dim dim_of[d]. The map invariant (checked by
// ValidateIndexMap) is that dim_of is injective over the member's rank and
// the permuted dims reproduce the evaluation dims exactly.
struct IndexMap {
  bool flat = true;
  std::vector<int> dim_of;

  bool operator==(const IndexMap& o) const {
    return flat == o.flat && dim_of == o.dim_of;
  }
};

bool ValidateIndexMap(const IndexMap& m, const Shape& node_shape,
                      const std::vector<int64_t>& eval_dims) {
  if (m.flat) return true;
  const int rank = node_shape.rank();
  if (static_cast<int>(m.dim_of.size()) != static_cast<int>(eval_dims.size()) ||
      rank != static_cast<int>(eval_dims.size())) {
    return false;
  }
  std::vector<char> used(rank, 0);
  for (size_t d = 0; d < m.dim_of.size(); ++d) {
    const int nd = m.dim_of[d];
    if (nd < 0 || nd >= rank || used[nd]) return false;
    used[nd] = 1;
    if (node_shape.dims()[nd] != eval_dims[d]) return false;
  }
  return true;
}

IndexMap NormalizeIndexMap(IndexMap m, const Shape& node_shape,
                           const std::vector<int64_t>& eval_dims) {
  if (m.flat) return m;
  if (node_shape.dims() != eval_dims) return m;
  for (size_t d = 0; d < m.dim_of.size(); ++d) {
    if (m.dim_of[d] != static_cast<int>(d)) return m;
  }
  m.flat = true;
  m.dim_of.clear();
  return m;
}

bool IsPermutation(const std::vector<int64_t>& perm, int rank) {
  if (static_cast<int>(perm.size()) != rank) return false;
  std::vector<char> used(rank, 0);
  for (int64_t p : perm) {
    if (p < 0 || p >= rank || used[p]) return false;
    used[p] = 1;
  }
  return true;
}

}  // namespace

StatusOr<CompiledRun> CompileFusedRun(
    const std::vector<FusedRunOp>& ops,
    const std::vector<FusedRunOperand>& operands, DType run_dtype) {
  const int n = static_cast<int>(ops.size());
  if (n < 2) return InvalidArgument("fused run needs at least two members");
  if (!MicroOpSupports(MicroOpCode::kAdd, run_dtype)) {
    return InvalidArgument("fused run dtype is not numeric");
  }

  enum class Member { kCompute, kLayout, kReduce };
  std::vector<Member> kind(n, Member::kCompute);
  std::vector<MicroOpCode> code(n, MicroOpCode::kAdd);
  MicroReduceKind reduce_kind = MicroReduceKind::kNone;
  for (int i = 0; i < n; ++i) {
    if (MicroOpCodeFor(ops[i].op, &code[i])) {
      kind[i] = Member::kCompute;
    } else if (MicroLayoutOp(ops[i].op)) {
      kind[i] = Member::kLayout;
    } else if (MicroReduceKindFor(ops[i].op, &reduce_kind)) {
      kind[i] = Member::kReduce;
      if (i != n - 1) {
        return InvalidArgument("reduction must terminate the fused run");
      }
    } else {
      return InvalidArgument("op is not fusable: " + ops[i].op);
    }
    if (!ops[i].shape.IsFullyDefined()) {
      return InvalidArgument("fused run member shape not fully defined");
    }
    const size_t want_args =
        kind[i] == Member::kCompute ? MicroOpArity(code[i]) : 1;
    if (ops[i].args.size() != want_args) {
      return InvalidArgument("fused run member arity mismatch");
    }
    for (const FusedRunArg& a : ops[i].args) {
      const bool is_producer = a.producer >= 0 && a.producer < i;
      const bool is_operand =
          a.operand >= 0 && a.operand < static_cast<int>(operands.size());
      if (is_producer == is_operand) {
        return InvalidArgument("fused run argument unresolved");
      }
    }
  }

  // The evaluation space: the reduction's input shape when a reduction
  // terminates the run, else the last member's shape.
  const bool has_reduce = kind[n - 1] == Member::kReduce;
  Shape eval_shape;
  int64_t reduce_count = 1;
  if (has_reduce) {
    const FusedRunArg& arg = ops[n - 1].args[0];
    if (arg.producer < 0) {
      return InvalidArgument("fused reduction input must be in-run");
    }
    eval_shape = ops[arg.producer].shape;
    std::vector<int64_t> axes = ops[n - 1].axes;
    for (int64_t& ax : axes) {
      if (ax < 0) ax += eval_shape.rank();
      if (ax < 0 || ax >= eval_shape.rank()) {
        return InvalidArgument("fused reduction axis out of range");
      }
    }
    std::sort(axes.begin(), axes.end());
    axes.erase(std::unique(axes.begin(), axes.end()), axes.end());
    if (axes.empty()) {
      for (int d = 0; d < eval_shape.rank(); ++d) axes.push_back(d);
    }
    // Only a trailing block of axes keeps the reduced elements contiguous in
    // evaluation order; anything else falls back to the standalone kernel.
    const int k = static_cast<int>(axes.size());
    for (int j = 0; j < k; ++j) {
      if (axes[j] != eval_shape.rank() - k + j) {
        return InvalidArgument("fused reduction must reduce trailing axes");
      }
    }
    for (int64_t ax : axes) reduce_count *= eval_shape.dims()[ax];
    if (reduce_count < 1) reduce_count = 1;
    if (ops[n - 1].shape.num_elements() * reduce_count !=
        eval_shape.num_elements()) {
      return InvalidArgument("fused reduction output does not tile the input");
    }
    if (ops[n - 1].dtype != run_dtype) {
      return InvalidArgument("fused run member dtype mismatch");
    }
  } else {
    eval_shape = ops[n - 1].shape;
  }
  const int64_t count = eval_shape.num_elements();
  if (count <= 0) return InvalidArgument("fused run over an empty tensor");

  const int limit = has_reduce ? n - 1 : n;
  std::vector<char> scalar(n, 0);
  for (int i = 0; i < limit; ++i) {
    scalar[i] = ops[i].shape.num_elements() == 1;
    if (ops[i].dtype != run_dtype) {
      return InvalidArgument("fused run member dtype mismatch");
    }
    if (!scalar[i] && ops[i].shape.num_elements() != count) {
      return InvalidArgument("fused run member count mismatch");
    }
    if (kind[i] == Member::kCompute && !MicroOpSupports(code[i], run_dtype)) {
      return InvalidArgument("fused run opcode unsupported for dtype");
    }
  }

  // Backward index-map analysis: walk members last-to-first (every consumer
  // of a producer has a larger index, so all proposals for a member precede
  // its own processing) and assign each member the map its consumers need.
  // Conflicting needs — one consumer wants the value flat, another wants it
  // transposed — are unsupported; the caller falls back.
  const std::vector<int64_t>& eval_dims = eval_shape.dims();
  std::vector<IndexMap> psi(n);
  std::vector<char> psi_set(n, 0);
  auto propose = [&](int p, const IndexMap& m) -> bool {
    if (scalar[p]) return true;  // index-independent
    if (!ValidateIndexMap(m, ops[p].shape, eval_dims)) return false;
    if (!psi_set[p]) {
      psi[p] = m;
      psi_set[p] = 1;
      return true;
    }
    return psi[p] == m;
  };
  for (int i = n - 1; i >= 0; --i) {
    if (kind[i] == Member::kReduce) {
      if (!propose(ops[i].args[0].producer, IndexMap{})) {
        return InvalidArgument("fused run has conflicting layouts");
      }
      continue;
    }
    if (scalar[i]) continue;  // its inputs are scalars too
    if (!psi_set[i]) {
      psi[i] = IndexMap{};  // unconsumed in-run: evaluate flat
      psi_set[i] = 1;
    }
    const IndexMap m = psi[i];
    if (kind[i] == Member::kCompute) {
      for (const FusedRunArg& a : ops[i].args) {
        if (a.producer < 0 || scalar[a.producer]) continue;
        if (!(ops[a.producer].shape == ops[i].shape) ||
            !propose(a.producer, m)) {
          return InvalidArgument("fused run has conflicting layouts");
        }
      }
      continue;
    }
    // Layout member: compose its index transform into the producer's map.
    // External-operand inputs are handled at emission (a load descriptor is
    // more flexible than a register map).
    const FusedRunArg& a = ops[i].args[0];
    if (a.producer < 0 || scalar[a.producer]) continue;
    const int p = a.producer;
    if (ops[i].op == "Transpose") {
      const std::vector<int64_t>& perm = ops[i].perm;
      const int rank = ops[i].shape.rank();
      if (!IsPermutation(perm, rank) || ops[p].shape.rank() != rank) {
        return InvalidArgument("fused transpose perm malformed");
      }
      for (int d = 0; d < rank; ++d) {
        if (ops[p].shape.dims()[perm[d]] != ops[i].shape.dims()[d]) {
          return InvalidArgument("fused transpose shape mismatch");
        }
      }
      IndexMap pm;
      pm.flat = false;
      if (m.flat) {
        pm.dim_of.assign(perm.begin(), perm.end());
      } else {
        pm.dim_of.resize(m.dim_of.size());
        for (size_t d = 0; d < m.dim_of.size(); ++d) {
          pm.dim_of[d] = static_cast<int>(perm[m.dim_of[d]]);
        }
      }
      pm = NormalizeIndexMap(std::move(pm), ops[p].shape, eval_dims);
      if (!propose(p, pm)) {
        return InvalidArgument("fused run has conflicting layouts");
      }
    } else {
      // Reshape/ExpandDims/Squeeze share the producer's buffer verbatim, so
      // they are exactly the flat map; under a permuted map the producer's
      // register would need a walk its own dims cannot express.
      if (!m.flat || !propose(p, IndexMap{})) {
        return InvalidArgument("fused run has conflicting layouts");
      }
    }
  }

  // ---- Emission ----
  CompiledRun out;
  MicroProgram& prog = out.program;
  prog.extended = true;
  prog.eval_dims = eval_dims;

  auto slot_for = [&](int64_t input, MicroAccess access) -> int32_t {
    // Collapse a strided descriptor that is actually contiguous (the walk
    // visits offsets 0..count-1 in order whenever strides are row-major for
    // its own dims, whatever those dims are).
    if (access.kind == MicroAccessKind::kStrided &&
        access.strides == RowMajorStrides(access.dims)) {
      access = MicroAccess{MicroAccessKind::kContiguous, {}, {}};
    }
    for (size_t s = 0; s < prog.slots.size(); ++s) {
      if (prog.slots[s].input == input && prog.slots[s].access == access) {
        return static_cast<int32_t>(s);
      }
    }
    prog.slots.push_back(MicroOperandSlot{input, std::move(access)});
    return static_cast<int32_t>(prog.slots.size() - 1);
  };

  // Access descriptor for an external operand of a compute member.
  auto compute_operand_access = [&](int oi, int member) -> StatusOr<MicroAccess> {
    const FusedRunOperand& od = operands[oi];
    if (od.shape.num_elements() == 1) {
      return MicroAccess{MicroAccessKind::kScalar, {}, {}};
    }
    const Shape& node_shape = ops[member].shape;
    if (!BroadcastsTo(od.shape, node_shape)) {
      return InvalidArgument("fused operand does not broadcast to the member");
    }
    std::vector<int64_t> b = BroadcastStrides(od.shape, node_shape);
    const IndexMap& m = psi[member];
    MicroAccess access;
    access.kind = MicroAccessKind::kStrided;
    if (m.flat) {
      access.dims = node_shape.dims();
      access.strides = std::move(b);
    } else {
      access.dims = eval_dims;
      access.strides.resize(eval_dims.size());
      for (size_t d = 0; d < eval_dims.size(); ++d) {
        access.strides[d] = b[m.dim_of[d]];
      }
    }
    return access;
  };

  // Access descriptor for an external operand read through a layout member.
  auto layout_operand_access = [&](int oi, int member) -> StatusOr<MicroAccess> {
    const FusedRunOperand& od = operands[oi];
    if (od.dtype != run_dtype) {
      return InvalidArgument("fused layout member cannot cast");
    }
    if (od.shape.num_elements() == 1) {
      return MicroAccess{MicroAccessKind::kScalar, {}, {}};
    }
    if (od.shape.num_elements() != ops[member].shape.num_elements()) {
      return InvalidArgument("fused layout operand count mismatch");
    }
    const IndexMap& m = psi[member];
    MicroAccess access;
    access.kind = MicroAccessKind::kStrided;
    if (ops[member].op == "Transpose") {
      const std::vector<int64_t>& perm = ops[member].perm;
      const int rank = ops[member].shape.rank();
      if (!IsPermutation(perm, rank) || od.shape.rank() != rank) {
        return InvalidArgument("fused transpose perm malformed");
      }
      std::vector<int64_t> in_rm = RowMajorStrides(od.shape.dims());
      std::vector<int64_t> walk(rank);
      for (int d = 0; d < rank; ++d) {
        if (od.shape.dims()[perm[d]] != ops[member].shape.dims()[d]) {
          return InvalidArgument("fused transpose shape mismatch");
        }
        walk[d] = in_rm[perm[d]];
      }
      if (m.flat) {
        access.dims = ops[member].shape.dims();
        access.strides = std::move(walk);
      } else {
        access.dims = eval_dims;
        access.strides.resize(eval_dims.size());
        for (size_t d = 0; d < eval_dims.size(); ++d) {
          access.strides[d] = walk[m.dim_of[d]];
        }
      }
    } else {
      if (m.flat) {
        return MicroAccess{MicroAccessKind::kContiguous, {}, {}};
      }
      std::vector<int64_t> node_rm = RowMajorStrides(ops[member].shape.dims());
      access.dims = eval_dims;
      access.strides.resize(eval_dims.size());
      for (size_t d = 0; d < eval_dims.size(); ++d) {
        access.strides[d] = node_rm[m.dim_of[d]];
      }
    }
    return access;
  };

  // Pass 1: resolve every argument to a slot or a producer, creating slots
  // in first-use order (slot ids must be final before registers number).
  struct ArgRef {
    bool is_slot = false;
    int32_t index = 0;  // slot id, or producer member index
  };
  std::vector<std::array<ArgRef, 2>> arg_refs(n);
  for (int i = 0; i < limit; ++i) {
    if (kind[i] == Member::kCompute) {
      const int arity = MicroOpArity(code[i]);
      for (int k = 0; k < arity; ++k) {
        const FusedRunArg& a = ops[i].args[k];
        if (a.producer >= 0) {
          arg_refs[i][k] = {false, a.producer};
          continue;
        }
        const FusedRunOperand& od = operands[a.operand];
        if (od.dtype != run_dtype) {
          if (code[i] != MicroOpCode::kCast ||
              !MicroOpSupports(MicroOpCode::kCast, od.dtype)) {
            return InvalidArgument(
                "fused operand dtype readable only by a cast");
          }
          out.has_cast = true;
        }
        TFE_ASSIGN_OR_RETURN(MicroAccess access,
                             compute_operand_access(a.operand, i));
        arg_refs[i][k] = {true, slot_for(a.operand, std::move(access))};
      }
      if (code[i] == MicroOpCode::kCast) out.has_cast = true;
    } else {  // layout
      const FusedRunArg& a = ops[i].args[0];
      if (a.producer >= 0) {
        if (ops[a.producer].dtype != run_dtype) {
          return InvalidArgument("fused layout member cannot cast");
        }
        arg_refs[i][0] = {false, a.producer};
      } else {
        TFE_ASSIGN_OR_RETURN(MicroAccess access,
                             layout_operand_access(a.operand, i));
        arg_refs[i][0] = {true, slot_for(a.operand, std::move(access))};
      }
    }
  }
  prog.num_operands = static_cast<int64_t>(prog.slots.size());
  if (prog.num_operands < 1) {
    return InvalidArgument("fused run reads no operands");
  }

  // Pass 2: emit instructions and resolve member registers.
  std::vector<int32_t> reg_of(n, -1);
  for (int i = 0; i < limit; ++i) {
    auto resolve = [&](const ArgRef& r) -> int32_t {
      return r.is_slot ? r.index : reg_of[r.index];
    };
    if (kind[i] == Member::kCompute) {
      MicroInst inst;
      inst.opcode = code[i];
      inst.a = resolve(arg_refs[i][0]);
      inst.b = MicroOpArity(code[i]) == 2 ? resolve(arg_refs[i][1]) : inst.a;
      reg_of[i] = static_cast<int32_t>(prog.num_operands + prog.insts.size());
      prog.insts.push_back(inst);
    } else {
      reg_of[i] = resolve(arg_refs[i][0]);
    }
  }

  // Outputs: every materialized member, in member order; the reduction's
  // output (when present) is the extra last kernel output.
  for (int i = 0; i < limit; ++i) {
    if (!ops[i].materialize) continue;
    MicroOutputSpec spec;
    spec.reg = reg_of[i];
    spec.shape = ops[i].shape.dims();
    if (scalar[i]) {
      spec.store.kind = MicroAccessKind::kScalar;
    } else if (psi[i].flat) {
      spec.store.kind = MicroAccessKind::kContiguous;
    } else {
      std::vector<int64_t> node_rm = RowMajorStrides(ops[i].shape.dims());
      spec.store.kind = MicroAccessKind::kStrided;
      spec.store.dims = eval_dims;
      spec.store.strides.resize(eval_dims.size());
      for (size_t d = 0; d < eval_dims.size(); ++d) {
        spec.store.strides[d] = node_rm[psi[i].dim_of[d]];
      }
    }
    prog.outputs.push_back(spec.reg);
    prog.output_specs.push_back(std::move(spec));
    out.output_members.push_back(i);
  }
  if (has_reduce) {
    prog.reduce.kind = reduce_kind;
    prog.reduce.src = reg_of[ops[n - 1].args[0].producer];
    prog.reduce.reduce_count = reduce_count;
    prog.reduce.shape = ops[n - 1].shape.dims();
    out.output_members.push_back(n - 1);
    out.has_reduce = true;
  }
  if (out.output_members.empty()) {
    return InvalidArgument("fused run materializes nothing");
  }

  // Lower to the v3 compact form: shared subexpressions (a DAG value read by
  // several consumers compiles each read against one instruction) and
  // liveness-driven row reuse, so scratch stays at a few rows however long
  // the run is. Donation analysis below only reasons about slots and the
  // row-vs-slot distinction, both of which compaction preserves.
  CompactProgram(&prog);

  // Donation plan: alias a uniquely-owned external operand's buffer as a
  // fused output so the run writes in place instead of allocating. The
  // interpreter processes disjoint contiguous blocks, and within a block
  // every gather/instruction read happens before any output store — so
  // overwriting a donor is safe iff (a) the output stores contiguously over
  // the full evaluation space (its block writes exactly the block's element
  // range), (b) every slot reading the donor is contiguous (strided/gather
  // reads cross block boundaries), and (c) none of those slots feed an
  // output store or the reduction epilogue, both of which read *after* the
  // block's stores. The donated output's register is always an instruction
  // row (condition on spec.reg below), so its own in-block reads precede
  // the store.
  out.donations.assign(prog.output_specs.size(), -1);
  std::vector<char> donor_taken(operands.size(), 0);
  for (size_t o = 0; o < prog.output_specs.size(); ++o) {
    const MicroOutputSpec& spec = prog.output_specs[o];
    if (spec.store.kind != MicroAccessKind::kContiguous) continue;
    if (spec.reg < prog.num_operands) continue;  // slot alias, reads a buffer
    if (ProductOf(spec.shape) != count) continue;
    for (size_t oi = 0; oi < operands.size(); ++oi) {
      if (donor_taken[oi] || !operands[oi].may_donate) continue;
      if (operands[oi].dtype != run_dtype) continue;
      if (operands[oi].shape.num_elements() != count) continue;
      bool safe = true;
      for (size_t s = 0; safe && s < prog.slots.size(); ++s) {
        if (prog.slots[s].input != static_cast<int64_t>(oi)) continue;
        if (prog.slots[s].access.kind != MicroAccessKind::kContiguous) {
          safe = false;
          break;
        }
        for (int32_t out_reg : prog.outputs) {
          if (out_reg == static_cast<int32_t>(s)) {
            safe = false;
            break;
          }
        }
        if (prog.reduce.kind != MicroReduceKind::kNone &&
            prog.reduce.src == static_cast<int32_t>(s)) {
          safe = false;
        }
      }
      if (!safe) continue;
      out.donations[o] = static_cast<int>(oi);
      donor_taken[oi] = 1;
      break;
    }
  }
  return out;
}

void CompactProgram(MicroProgram* program) {
  if (!program->extended || program->compact) return;
  const int64_t n_ops = program->num_operands;

  // CSE over the one-value-per-instruction form: value id n_ops + j names
  // instruction j's result; `val` maps original value ids to merged ones.
  std::vector<int32_t> val(n_ops + program->insts.size());
  for (int64_t s = 0; s < n_ops; ++s) val[s] = static_cast<int32_t>(s);
  std::vector<MicroInst> merged;
  std::map<std::tuple<int64_t, int32_t, int32_t>, int32_t> seen;
  for (size_t j = 0; j < program->insts.size(); ++j) {
    MicroInst inst = program->insts[j];
    inst.a = val[inst.a];
    inst.b = val[inst.b];
    const auto key = std::make_tuple(static_cast<int64_t>(inst.opcode),
                                     inst.a, inst.b);
    auto it = seen.find(key);
    if (it != seen.end()) {
      val[n_ops + j] = it->second;
      continue;
    }
    const int32_t v = static_cast<int32_t>(n_ops + merged.size());
    val[n_ops + j] = v;
    seen.emplace(key, v);
    merged.push_back(inst);
  }

  // Liveness: a value's row is reusable after its last reader; values named
  // by an output spec or the reduce epilogue are read after every
  // instruction ran, so they stay pinned to the end.
  std::vector<int32_t> last_use(merged.size(), -1);
  std::vector<char> pinned(merged.size(), 0);
  for (size_t j = 0; j < merged.size(); ++j) {
    if (merged[j].a >= n_ops) {
      last_use[merged[j].a - n_ops] = static_cast<int32_t>(j);
    }
    if (merged[j].b >= n_ops) {
      last_use[merged[j].b - n_ops] = static_cast<int32_t>(j);
    }
  }
  for (size_t o = 0; o < program->output_specs.size(); ++o) {
    const int32_t reg = val[program->output_specs[o].reg];
    if (reg >= n_ops) pinned[reg - n_ops] = 1;
  }
  if (program->reduce.kind != MicroReduceKind::kNone &&
      program->reduce.src >= n_ops) {
    pinned[val[program->reduce.src] - n_ops] = 1;
  }

  // Row assignment. Releasing a source row before allocating the dst lets an
  // instruction overwrite its own input row: the interpreter's block loops
  // read element i before writing element i, so in-place rows are exact.
  std::vector<int32_t> row_of(merged.size(), -1);
  std::vector<int32_t> free_rows;
  int32_t next_row = 0;
  for (size_t j = 0; j < merged.size(); ++j) {
    MicroInst& inst = merged[j];
    const int32_t a_val = inst.a;  // merged value ids, pre-rewrite
    const int32_t b_val = inst.b;
    if (a_val >= n_ops) {
      inst.a = static_cast<int32_t>(n_ops + row_of[a_val - n_ops]);
    }
    if (b_val >= n_ops) {
      inst.b = static_cast<int32_t>(n_ops + row_of[b_val - n_ops]);
    }
    auto maybe_release = [&](int32_t value) {
      if (value < n_ops) return;
      const int32_t idx = value - n_ops;
      if (last_use[idx] == static_cast<int32_t>(j) && !pinned[idx]) {
        free_rows.push_back(row_of[idx]);
        last_use[idx] = -2;  // release once even when a == b
      }
    };
    maybe_release(a_val);
    maybe_release(b_val);
    int32_t row;
    if (free_rows.empty()) {
      row = next_row++;
    } else {
      row = free_rows.back();
      free_rows.pop_back();
    }
    row_of[j] = row;
    inst.dst = static_cast<int32_t>(n_ops + row);
    // A value nothing reads (dead code after a trial shrink) frees its row
    // immediately.
    if (last_use[j] == -1 && !pinned[j]) free_rows.push_back(row);
  }

  // Rewrite output and reduce references to their final rows.
  for (size_t o = 0; o < program->output_specs.size(); ++o) {
    int32_t reg = program->output_specs[o].reg;
    if (reg >= n_ops) {
      reg = static_cast<int32_t>(n_ops + row_of[val[reg] - n_ops]);
    }
    program->output_specs[o].reg = reg;
    program->outputs[o] = reg;
  }
  if (program->reduce.kind != MicroReduceKind::kNone &&
      program->reduce.src >= n_ops) {
    program->reduce.src =
        static_cast<int32_t>(n_ops + row_of[val[program->reduce.src] - n_ops]);
  }

  program->insts = std::move(merged);
  program->num_rows = next_row;
  program->compact = true;
}

// ---- Interpreter -----------------------------------------------------------

namespace {

// Below this many output elements a fused shard is not worth a pool hop.
constexpr int64_t kFusedGrainElements = 16 * 1024;

// Elements interpreted per block. The interpreter dispatches each micro-op
// once per block and then runs a tight loop the compiler can vectorize; the
// hot registers (an instruction's operands are almost always recent results)
// stay cache-resident at this size. Must divide kReduceChunkElements so
// reduction chunk boundaries always land on block boundaries.
constexpr int64_t kFusedBlockElements = 512;
static_assert(kReduceChunkElements % kFusedBlockElements == 0);

// Strides are 0 (broadcast scalar) or 1, so specializing the four cases
// keeps every loop body a unit-stride read the vectorizer understands.
template <typename F, typename T>
void BinaryBlock(const T* a, int sa, const T* b, int sb, T* out, int64_t len) {
  if (sa == 1 && sb == 1) {
    for (int64_t i = 0; i < len; ++i) out[i] = F::template Apply<T>(a[i], b[i]);
  } else if (sa == 1) {
    const T y = b[0];
    for (int64_t i = 0; i < len; ++i) out[i] = F::template Apply<T>(a[i], y);
  } else if (sb == 1) {
    const T x = a[0];
    for (int64_t i = 0; i < len; ++i) out[i] = F::template Apply<T>(x, b[i]);
  } else {
    const T value = F::template Apply<T>(a[0], b[0]);
    for (int64_t i = 0; i < len; ++i) out[i] = value;
  }
}

template <typename F, typename T>
void UnaryBlock(const T* a, int sa, T* out, int64_t len) {
  if (sa == 1) {
    for (int64_t i = 0; i < len; ++i) out[i] = F::template Apply<T>(a[i]);
  } else {
    const T value = F::template Apply<T>(a[0]);
    for (int64_t i = 0; i < len; ++i) out[i] = value;
  }
}

// Gathers `len` evaluation-contiguous elements starting at flat index `base`
// from a strided walk into the contiguous row `out`, odometer-style (the
// same walk TransposeKernel does, generalized to broadcast strides).
template <typename T>
void GatherBlock(const MicroAccess& access, const T* src, int64_t base,
                 int64_t len, T* out, std::vector<int64_t>& coord) {
  const int rank = static_cast<int>(access.dims.size());
  if (rank == 0) {
    for (int64_t i = 0; i < len; ++i) out[i] = src[0];
    return;
  }
  int64_t rem = base;
  int64_t off = 0;
  for (int d = rank - 1; d >= 0; --d) {
    coord[d] = rem % access.dims[d];
    rem /= access.dims[d];
    off += coord[d] * access.strides[d];
  }
  for (int64_t i = 0; i < len; ++i) {
    out[i] = src[off];
    for (int d = rank - 1; d >= 0; --d) {
      off += access.strides[d];
      if (++coord[d] < access.dims[d]) break;
      coord[d] = 0;
      off -= access.strides[d] * access.dims[d];
    }
  }
}

// Scatter counterpart of GatherBlock for permuted output stores.
template <typename T>
void ScatterBlock(const MicroAccess& access, T* dst, int64_t base, int64_t len,
                  const T* row, int64_t row_stride,
                  std::vector<int64_t>& coord) {
  const int rank = static_cast<int>(access.dims.size());
  if (rank == 0) {
    if (base == 0 && len > 0) dst[0] = row[0];
    return;
  }
  int64_t rem = base;
  int64_t off = 0;
  for (int d = rank - 1; d >= 0; --d) {
    coord[d] = rem % access.dims[d];
    rem /= access.dims[d];
    off += coord[d] * access.strides[d];
  }
  for (int64_t i = 0; i < len; ++i) {
    dst[off] = row[i * row_stride];
    for (int d = rank - 1; d >= 0; --d) {
      off += access.strides[d];
      if (++coord[d] < access.dims[d]) break;
      coord[d] = 0;
      off -= access.strides[d] * access.dims[d];
    }
  }
}

// A slot resolved against the kernel's (possibly dtype-converted) inputs.
template <typename T>
struct ResolvedSlot {
  const T* base = nullptr;
  int stride = 1;              // 0 = broadcast scalar (non-gather slots only)
  int gather = -1;             // >= 0: index of this slot's gather row
  const MicroAccess* access = nullptr;  // gather slots only
};

template <typename T>
struct ResolvedOutput {
  T* data = nullptr;
  MicroAccessKind kind = MicroAccessKind::kAuto;
  const MicroAccess* store = nullptr;  // kStrided only
  int32_t reg = 0;
};

ReduceAccumKind AccumKindOf(MicroReduceKind kind) {
  switch (kind) {
    case MicroReduceKind::kMax:
      return ReduceAccumKind::kMax;
    case MicroReduceKind::kMin:
      return ReduceAccumKind::kMin;
    default:
      return ReduceAccumKind::kSum;  // Sum and Mean accumulate alike
  }
}

// One traversal of the evaluation space, blocked: for each block, gather
// rows for strided slots, run every instruction as one tight loop writing
// its own register row, store the published registers, and (for map-reduce
// programs) fold the reduction source into the owning chunk partial.
template <typename T>
void RunTyped(EagerContext* ectx, const MicroProgram& program,
              const std::vector<ResolvedSlot<T>>& slots, int num_gather_rows,
              const std::vector<ResolvedOutput<T>>& outputs, T* reduce_out,
              int64_t count) {
  if (count <= 0) return;
  const int64_t row_elements = std::min(kFusedBlockElements, count);
  int max_rank = 0;
  for (const ResolvedSlot<T>& slot : slots) {
    if (slot.access) {
      max_rank = std::max(max_rank, static_cast<int>(slot.access->dims.size()));
    }
  }
  for (const ResolvedOutput<T>& o : outputs) {
    if (o.store) {
      max_rank = std::max(max_rank, static_cast<int>(o.store->dims.size()));
    }
  }
  const bool has_reduce = program.reduce.kind != MicroReduceKind::kNone;
  const ReduceAccumKind rkind = AccumKindOf(program.reduce.kind);

  struct Scratch {
    std::vector<T> rows;
    std::vector<int64_t> coord;
  };
  // Decode normalized every program (v1/v2/v3) to explicit dst rows, so
  // scratch is num_rows rows — for compact programs a few rows however long
  // the instruction list is.
  const size_t scratch_rows =
      num_gather_rows + static_cast<size_t>(program.num_rows);
  auto make_scratch = [&]() {
    return Scratch{std::vector<T>(scratch_rows * row_elements),
                   std::vector<int64_t>(std::max(max_rank, 1))};
  };

  // `partial`, when non-null, receives the reduction source over this block.
  auto interpret_block = [&](Scratch& s, int64_t base, int64_t len,
                             T* partial) {
    T* gather_rows = s.rows.data();
    T* inst_rows = gather_rows + num_gather_rows * row_elements;
    auto src = [&](int32_t r) -> std::pair<const T*, int> {
      if (r < program.num_operands) {
        const ResolvedSlot<T>& slot = slots[r];
        if (slot.gather >= 0) {
          return {gather_rows + slot.gather * row_elements, 1};
        }
        return {slot.base + (slot.stride != 0 ? base : 0), slot.stride};
      }
      return {inst_rows + (r - program.num_operands) * row_elements, 1};
    };
    for (int32_t r = 0; r < program.num_operands; ++r) {
      const ResolvedSlot<T>& slot = slots[r];
      if (slot.gather >= 0) {
        GatherBlock(*slot.access, slot.base, base, len,
                    gather_rows + slot.gather * row_elements, s.coord);
      }
    }
    for (size_t j = 0; j < program.insts.size(); ++j) {
      const MicroInst& inst = program.insts[j];
      auto [pa, sa] = src(inst.a);
      T* out = inst_rows + (inst.dst - program.num_operands) * row_elements;
      if (MicroOpArity(inst.opcode) == 2) {
        auto [pb, sb] = src(inst.b);
        using namespace functors;  // NOLINT(build/namespaces)
        switch (inst.opcode) {
#define TFE_FUSED_BINARY_CASE(code, F)        \
  case MicroOpCode::code:                     \
    BinaryBlock<F, T>(pa, sa, pb, sb, out, len); \
    break;
          TFE_FUSED_BINARY_CASE(kAdd, AddF)
          TFE_FUSED_BINARY_CASE(kSub, SubF)
          TFE_FUSED_BINARY_CASE(kMul, MulF)
          TFE_FUSED_BINARY_CASE(kDiv, DivF)
          TFE_FUSED_BINARY_CASE(kMaximum, MaximumF)
          TFE_FUSED_BINARY_CASE(kMinimum, MinimumF)
          TFE_FUSED_BINARY_CASE(kSquaredDifference, SquaredDifferenceF)
          TFE_FUSED_BINARY_CASE(kPow, PowF)
#undef TFE_FUSED_BINARY_CASE
          default:
            break;  // unreachable; arity == 2 covers exactly these
        }
      } else {
        using namespace functors;  // NOLINT(build/namespaces)
        switch (inst.opcode) {
#define TFE_FUSED_UNARY_CASE(code, F) \
  case MicroOpCode::code:             \
    UnaryBlock<F, T>(pa, sa, out, len); \
    break;
          TFE_FUSED_UNARY_CASE(kNeg, NegF)
          TFE_FUSED_UNARY_CASE(kAbs, AbsF)
          TFE_FUSED_UNARY_CASE(kSquare, SquareF)
          TFE_FUSED_UNARY_CASE(kSign, SignF)
          TFE_FUSED_UNARY_CASE(kRelu, ReluF)
          TFE_FUSED_UNARY_CASE(kExp, ExpF)
          TFE_FUSED_UNARY_CASE(kLog, LogF)
          TFE_FUSED_UNARY_CASE(kSqrt, SqrtF)
          TFE_FUSED_UNARY_CASE(kRsqrt, RsqrtF)
          TFE_FUSED_UNARY_CASE(kTanh, TanhF)
          TFE_FUSED_UNARY_CASE(kSigmoid, SigmoidF)
          TFE_FUSED_UNARY_CASE(kSin, SinF)
          TFE_FUSED_UNARY_CASE(kCos, CosF)
          TFE_FUSED_UNARY_CASE(kReciprocal, ReciprocalF)
          TFE_FUSED_UNARY_CASE(kFloor, FloorF)
#undef TFE_FUSED_UNARY_CASE
          case MicroOpCode::kCast:
            // Identity: foreign operands were converted to T up front. With
            // compact row reuse the source row may be reassigned as the
            // destination, making the copy an exact self-copy — skip it.
            if (sa == 1) {
              if (pa != out) std::copy(pa, pa + len, out);
            } else {
              std::fill(out, out + len, pa[0]);
            }
            break;
          default:
            break;  // unreachable; Decode validated the opcode
        }
      }
    }
    for (const ResolvedOutput<T>& o : outputs) {
      auto [p, stride] = src(o.reg);
      switch (o.kind) {
        case MicroAccessKind::kScalar:
          if (base == 0) o.data[0] = p[0];
          break;
        case MicroAccessKind::kStrided:
          ScatterBlock(*o.store, o.data, base, len, p,
                       static_cast<int64_t>(stride), s.coord);
          break;
        default: {  // kAuto / kContiguous
          T* dst = o.data + base;
          if (stride == 1) {
            std::copy(p, p + len, dst);
          } else {
            std::fill(dst, dst + len, p[0]);
          }
          break;
        }
      }
    }
    if (partial) {
      auto [p, stride] = src(program.reduce.src);
      ReduceAccumulate(rkind, *partial, p, static_cast<int64_t>(stride), len);
    }
  };

  if (!has_reduce) {
    const int64_t num_blocks =
        (count + kFusedBlockElements - 1) / kFusedBlockElements;
    const int64_t min_blocks =
        std::max<int64_t>(1, kFusedGrainElements / kFusedBlockElements);
    ParallelFor(ectx, num_blocks, min_blocks,
                [&](int64_t block_begin, int64_t block_end) {
                  Scratch s = make_scratch();
                  for (int64_t block = block_begin; block < block_end;
                       ++block) {
                    const int64_t base = block * kFusedBlockElements;
                    interpret_block(s, base,
                                    std::min(kFusedBlockElements, count - base),
                                    nullptr);
                  }
                });
    return;
  }

  // Map-reduce: the evaluation space is out_count strips of reduce_count
  // contiguous elements. Each strip uses the canonical chunk/tree geometry
  // from reduce_util.h, so the result is bitwise identical to the standalone
  // reduction kernel, serial or sharded.
  const int64_t rc = program.reduce.reduce_count;
  const int64_t out_count = count / rc;
  const int64_t nc = ReduceChunkCount(rc);
  const T init = ReduceInit<T>(rkind);
  const bool is_mean = program.reduce.kind == MicroReduceKind::kMean;
  if (out_count > 1) {
    // Shards own whole strips (partials, tree, and finalize included).
    const int64_t min_strips =
        std::max<int64_t>(1, kFusedGrainElements / std::max<int64_t>(rc, 1));
    ParallelFor(ectx, out_count, min_strips,
                [&](int64_t strip_begin, int64_t strip_end) {
                  Scratch s = make_scratch();
                  std::vector<T> partials(nc);
                  for (int64_t strip = strip_begin; strip < strip_end;
                       ++strip) {
                    std::fill(partials.begin(), partials.end(), init);
                    int64_t off = 0;
                    while (off < rc) {
                      const int64_t len =
                          std::min(kFusedBlockElements, rc - off);
                      interpret_block(s, strip * rc + off, len,
                                      &partials[off / kReduceChunkElements]);
                      off += len;
                    }
                    T acc = ReduceCombineTree(rkind, partials.data(), nc);
                    if (is_mean) acc /= static_cast<T>(rc);
                    reduce_out[strip] = acc;
                  }
                });
    return;
  }
  // Full reduction (one strip): shards own disjoint chunk ranges writing a
  // shared partial array, then a single serial tree combine after the
  // ParallelFor barrier.
  std::vector<T> partials(nc, init);
  const int64_t min_chunks =
      std::max<int64_t>(1, kFusedGrainElements / kReduceChunkElements);
  ParallelFor(ectx, nc, min_chunks, [&](int64_t c_begin, int64_t c_end) {
    Scratch s = make_scratch();
    for (int64_t c = c_begin; c < c_end; ++c) {
      T acc = init;
      const int64_t begin = c * kReduceChunkElements;
      const int64_t end = std::min(rc, begin + kReduceChunkElements);
      for (int64_t off = begin; off < end; off += kFusedBlockElements) {
        interpret_block(s, off, std::min(kFusedBlockElements, end - off),
                        &acc);
      }
      partials[c] = acc;
    }
  });
  T acc = ReduceCombineTree(rkind, partials.data(), nc);
  if (is_mean) acc /= static_cast<T>(rc);
  reduce_out[0] = acc;
}

Status FusedElementwiseKernel(KernelContext* ctx) {
  TFE_ASSIGN_OR_RETURN(auto encoded,
                       ctx->GetAttr<std::vector<int64_t>>("program"));
  TFE_ASSIGN_OR_RETURN(MicroProgram program, MicroProgram::Decode(encoded));
  const std::vector<Tensor>& inputs = ctx->inputs();
  if (inputs.empty()) {
    return InvalidArgument("FusedElementwise requires at least one operand");
  }

  // The run dtype: explicit when the program folds casts (operands may then
  // carry foreign source dtypes), otherwise every operand's shared dtype.
  const DType dtype = ctx->GetAttrOr<DType>("dtype", inputs[0].dtype());

  int64_t count = 0;
  Shape legacy_shape;
  if (program.extended) {
    count = ProductOf(program.eval_dims);
    for (const MicroOperandSlot& slot : program.slots) {
      if (slot.input < 0 ||
          slot.input >= static_cast<int64_t>(inputs.size())) {
        return InvalidArgument("FusedElementwise slot input out of range");
      }
      const Tensor& input = inputs[slot.input];
      switch (slot.access.kind) {
        case MicroAccessKind::kScalar:
          if (input.num_elements() != 1) {
            return InvalidArgument(
                "FusedElementwise scalar slot reads a non-scalar input");
          }
          break;
        case MicroAccessKind::kStrided:
          if (MaxAccessOffset(slot.access) >= input.num_elements()) {
            return InvalidArgument(
                "FusedElementwise strided slot escapes its input");
          }
          break;
        default:  // kAuto / kContiguous
          if (input.num_elements() != count &&
              !(slot.access.kind == MicroAccessKind::kAuto &&
                input.num_elements() == 1)) {
            return InvalidArgument(
                "FusedElementwise slot does not cover the evaluation space");
          }
          break;
      }
    }
  } else {
    // v1: slot i reads input i; shapes must match the run shape or be
    // broadcast scalars, and the run shape is the largest operand's.
    if (program.num_operands != static_cast<int64_t>(inputs.size())) {
      return InvalidArgument("FusedElementwise operand count mismatch");
    }
    legacy_shape = inputs[0].shape();
    for (const Tensor& input : inputs) {
      if (input.num_elements() > legacy_shape.num_elements()) {
        legacy_shape = input.shape();
      }
    }
    for (const Tensor& input : inputs) {
      if (input.shape() != legacy_shape && input.num_elements() != 1) {
        return InvalidArgument(
            "FusedElementwise operands must match the run shape or be scalars");
      }
    }
    count = legacy_shape.num_elements();
    program.slots.resize(inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i) {
      program.slots[i].input = static_cast<int64_t>(i);
      program.slots[i].access.kind = MicroAccessKind::kAuto;
    }
  }

  // A foreign-dtype operand is legal only as a kCast source; it gets
  // converted to the run dtype before interpretation.
  std::vector<bool> foreign(inputs.size(), false);
  for (const MicroOperandSlot& slot : program.slots) {
    const Tensor& input = inputs[slot.input];
    if (input.dtype() == dtype) continue;
    if (!MicroOpSupports(MicroOpCode::kCast, input.dtype())) {
      return InvalidArgument("FusedElementwise operand dtype mismatch");
    }
    foreign[slot.input] = true;
  }
  const auto reads_foreign = [&](int32_t r) {
    return r < program.num_operands && foreign[program.slots[r].input];
  };
  for (const MicroInst& inst : program.insts) {
    if (!MicroOpSupports(inst.opcode, dtype)) {
      return InvalidArgument("FusedElementwise opcode unsupported for dtype");
    }
    if (inst.opcode == MicroOpCode::kCast) continue;
    if (reads_foreign(inst.a) ||
        (MicroOpArity(inst.opcode) == 2 && reads_foreign(inst.b))) {
      return InvalidArgument(
          "FusedElementwise foreign-dtype operand read by a non-cast op");
    }
  }
  // Published registers (outputs, reduce source) must carry the run dtype.
  for (int32_t reg : program.outputs) {
    if (reads_foreign(reg)) {
      return InvalidArgument(
          "FusedElementwise foreign-dtype operand published as an output");
    }
  }
  if (program.reduce.kind != MicroReduceKind::kNone &&
      reads_foreign(program.reduce.src)) {
    return InvalidArgument(
        "FusedElementwise foreign-dtype operand fed to the reduction");
  }

  // Donation plan ("donate" attr): output k writes donate[k]'s buffer in
  // place (-1 = fresh allocation). The compiler only assigns donations it
  // proved safe, but the kernel is publicly invocable, so re-validate the
  // in-place rules here: dtype/size match, a contiguous full-space store
  // from an instruction register, and no slot of the donor feeding an
  // output store or the reduction epilogue (both read after the block's
  // stores — everything else reads before them).
  const std::vector<int64_t> donate =
      ctx->GetAttrOr<std::vector<int64_t>>("donate", {});
  if (!donate.empty()) {
    if (!program.extended) {
      return InvalidArgument("FusedElementwise donation requires a v2 program");
    }
    if (donate.size() != program.outputs.size()) {
      return InvalidArgument("FusedElementwise donate length mismatch");
    }
    for (size_t o = 0; o < donate.size(); ++o) {
      const int64_t donor = donate[o];
      if (donor < 0) continue;
      if (donor >= static_cast<int64_t>(inputs.size())) {
        return InvalidArgument("FusedElementwise donor index out of range");
      }
      const MicroOutputSpec& spec = program.output_specs[o];
      const Tensor& src = inputs[donor];
      if (src.dtype() != dtype || foreign[donor] ||
          src.num_elements() != count ||
          spec.store.kind != MicroAccessKind::kContiguous ||
          ProductOf(spec.shape) != count ||
          spec.reg < program.num_operands) {
        return InvalidArgument("FusedElementwise unsafe donation");
      }
      for (size_t s = 0; s < program.slots.size(); ++s) {
        if (program.slots[s].input != donor) continue;
        bool stored = program.slots[s].access.kind !=
                      MicroAccessKind::kContiguous;
        for (int32_t out_reg : program.outputs) {
          if (out_reg == static_cast<int32_t>(s)) stored = true;
        }
        if (program.reduce.kind != MicroReduceKind::kNone &&
            program.reduce.src == static_cast<int32_t>(s)) {
          stored = true;
        }
        if (stored) {
          return InvalidArgument("FusedElementwise unsafe donation");
        }
      }
    }
  }

  EagerContext* ectx = ctx->eager_context();
  ectx->stats().fused_runs.fetch_add(1, std::memory_order_relaxed);
  ectx->stats().fused_ops.fetch_add(program.insts.size(),
                                    std::memory_order_relaxed);
  if (program.reduce.kind != MicroReduceKind::kNone) {
    static profiler::Counter* reduce_runs =
        profiler::Metrics().GetCounter("fusion.reduce_runs");
    static const uint32_t reduce_name_id = profiler::Intern("fused_reduce_run");
    reduce_runs->Increment();
    profiler::RecordInstant(profiler::EventKind::kFusionRun, reduce_name_id,
                            static_cast<int64_t>(program.insts.size()) + 1);
  }
  {
    // A DAG run (vs a linear chain): more than one published output, or an
    // in-run value consumed by several instructions. Rows are storage, not
    // values — a write retires the row's previous value — so read counts
    // reset at each redefinition.
    bool dag = program.outputs.size() +
                   (program.reduce.kind != MicroReduceKind::kNone ? 1 : 0) >
               1;
    if (!dag) {
      std::vector<int> reads(program.num_registers(), 0);
      for (const MicroInst& inst : program.insts) {
        if (inst.a >= program.num_operands && ++reads[inst.a] > 1) dag = true;
        if (MicroOpArity(inst.opcode) == 2 && inst.b >= program.num_operands &&
            ++reads[inst.b] > 1) {
          dag = true;
        }
        if (inst.dst >= 0) reads[inst.dst] = 0;
      }
    }
    if (dag) {
      static profiler::Counter* dag_runs =
          profiler::Metrics().GetCounter("fusion.dag_runs");
      static const uint32_t dag_name_id = profiler::Intern("dag_fused_run");
      dag_runs->Increment();
      ectx->stats().fused_dag_runs.fetch_add(1, std::memory_order_relaxed);
      profiler::RecordInstant(profiler::EventKind::kFusionRun, dag_name_id,
                              static_cast<int64_t>(program.insts.size()));
    }
  }

  TFE_SWITCH_NUMERIC(dtype, T, {
    // Pre-converted storage for foreign (cast-source) operands; the
    // conversion applies the exact static_cast the standalone Cast kernel
    // does, so folded runs stay bitwise identical to op-at-a-time.
    std::vector<std::vector<T>> converted(inputs.size());
    std::vector<const T*> input_ptrs(inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i) {
      const Tensor& input = inputs[i];
      if (foreign[i]) {
        std::vector<T> buffer(input.num_elements());
        TFE_SWITCH_NUMERIC(input.dtype(), TIn, {
          const TIn* in = input.data<TIn>();
          for (int64_t k = 0; k < input.num_elements(); ++k) {
            buffer[k] = static_cast<T>(in[k]);
          }
        });
        converted[i] = std::move(buffer);
        input_ptrs[i] = converted[i].data();
      } else {
        input_ptrs[i] = input.data<T>();
      }
    }
    std::vector<ResolvedSlot<T>> slots(program.slots.size());
    int num_gather_rows = 0;
    for (size_t s = 0; s < program.slots.size(); ++s) {
      const MicroOperandSlot& slot = program.slots[s];
      slots[s].base = input_ptrs[slot.input];
      switch (slot.access.kind) {
        case MicroAccessKind::kScalar:
          slots[s].stride = 0;
          break;
        case MicroAccessKind::kStrided:
          slots[s].gather = num_gather_rows++;
          slots[s].access = &slot.access;
          break;
        case MicroAccessKind::kAuto:
          slots[s].stride =
              inputs[slot.input].num_elements() == 1 && count > 1 ? 0 : 1;
          break;
        case MicroAccessKind::kContiguous:
          slots[s].stride = 1;
          break;
      }
    }
    std::vector<ResolvedOutput<T>> outputs;
    outputs.reserve(program.outputs.size());
    for (size_t o = 0; o < program.outputs.size(); ++o) {
      ResolvedOutput<T> res;
      res.reg = program.outputs[o];
      if (program.extended) {
        const MicroOutputSpec& spec = program.output_specs[o];
        const int64_t donor = o < donate.size() ? donate[o] : -1;
        Tensor out =
            donor >= 0
                ? DonateOutput(ctx, static_cast<int>(o), dtype,
                               Shape(spec.shape), inputs[donor])
                : ctx->AllocateOutput(static_cast<int>(o), dtype,
                                      Shape(spec.shape));
        res.data = out.mutable_data<T>();
        res.kind = spec.store.kind;
        if (spec.store.kind == MicroAccessKind::kStrided) {
          res.store = &spec.store;
        }
      } else {
        Tensor out =
            ctx->AllocateOutput(static_cast<int>(o), dtype, legacy_shape);
        res.data = out.mutable_data<T>();
        res.kind = MicroAccessKind::kAuto;
      }
      outputs.push_back(res);
    }
    T* reduce_out = nullptr;
    if (program.reduce.kind != MicroReduceKind::kNone) {
      Tensor out = ctx->AllocateOutput(static_cast<int>(program.outputs.size()),
                                       dtype, Shape(program.reduce.shape));
      reduce_out = out.mutable_data<T>();
    }
    RunTyped<T>(ectx, program, slots, num_gather_rows, outputs, reduce_out,
                count);
  });
  return Status::OK();
}

}  // namespace

void RegisterFusedElementwiseKernels() {
  RegisterKernel("FusedElementwise", FusedElementwiseKernel);
}

}  // namespace kernels
}  // namespace tfe
