#include "kernels/fused_elementwise.h"

#include <algorithm>
#include <unordered_map>
#include <utility>
#include <vector>

#include "kernels/elementwise_functors.h"
#include "kernels/kernel_util.h"
#include "runtime/eager_context.h"

namespace tfe {
namespace kernels {

std::vector<int64_t> MicroProgram::Encode() const {
  std::vector<int64_t> encoded;
  encoded.reserve(2 + insts.size() * 3 + 1 + outputs.size());
  encoded.push_back(num_operands);
  encoded.push_back(static_cast<int64_t>(insts.size()));
  for (const MicroInst& inst : insts) {
    encoded.push_back(static_cast<int64_t>(inst.opcode));
    encoded.push_back(inst.a);
    encoded.push_back(inst.b);
  }
  encoded.push_back(static_cast<int64_t>(outputs.size()));
  for (int32_t reg : outputs) encoded.push_back(reg);
  return encoded;
}

StatusOr<MicroProgram> MicroProgram::Decode(
    const std::vector<int64_t>& encoded) {
  MicroProgram program;
  size_t pos = 0;
  auto next = [&]() -> StatusOr<int64_t> {
    if (pos >= encoded.size()) {
      return InvalidArgument("Truncated FusedElementwise program");
    }
    return encoded[pos++];
  };
  TFE_ASSIGN_OR_RETURN(program.num_operands, next());
  TFE_ASSIGN_OR_RETURN(int64_t num_insts, next());
  if (program.num_operands < 0 || num_insts <= 0) {
    return InvalidArgument("Malformed FusedElementwise program header");
  }
  program.insts.reserve(num_insts);
  for (int64_t i = 0; i < num_insts; ++i) {
    MicroInst inst;
    TFE_ASSIGN_OR_RETURN(int64_t opcode, next());
    if (opcode < static_cast<int64_t>(MicroOpCode::kAdd) ||
        opcode > static_cast<int64_t>(MicroOpCode::kCast)) {
      return InvalidArgument("Unknown FusedElementwise opcode");
    }
    inst.opcode = static_cast<MicroOpCode>(opcode);
    TFE_ASSIGN_OR_RETURN(int64_t a, next());
    TFE_ASSIGN_OR_RETURN(int64_t b, next());
    // Instruction i may read operand registers and earlier results only.
    const int64_t limit = program.num_operands + i;
    if (a < 0 || a >= limit || b < 0 || b >= limit) {
      return InvalidArgument("FusedElementwise register out of range");
    }
    inst.a = static_cast<int32_t>(a);
    inst.b = static_cast<int32_t>(b);
    program.insts.push_back(inst);
  }
  TFE_ASSIGN_OR_RETURN(int64_t num_outputs, next());
  if (num_outputs < 0) {
    return InvalidArgument("Malformed FusedElementwise output count");
  }
  for (int64_t i = 0; i < num_outputs; ++i) {
    TFE_ASSIGN_OR_RETURN(int64_t reg, next());
    if (reg < 0 || reg >= program.num_registers()) {
      return InvalidArgument("FusedElementwise output register out of range");
    }
    program.outputs.push_back(static_cast<int32_t>(reg));
  }
  if (pos != encoded.size()) {
    return InvalidArgument("Trailing data in FusedElementwise program");
  }
  return program;
}

bool MicroOpCodeFor(const std::string& op_name, MicroOpCode* code) {
  static const std::unordered_map<std::string, MicroOpCode>* kMap =
      new std::unordered_map<std::string, MicroOpCode>{
          {"Add", MicroOpCode::kAdd},
          {"Sub", MicroOpCode::kSub},
          {"Mul", MicroOpCode::kMul},
          {"Div", MicroOpCode::kDiv},
          {"Maximum", MicroOpCode::kMaximum},
          {"Minimum", MicroOpCode::kMinimum},
          {"SquaredDifference", MicroOpCode::kSquaredDifference},
          {"Pow", MicroOpCode::kPow},
          {"Neg", MicroOpCode::kNeg},
          {"Abs", MicroOpCode::kAbs},
          {"Square", MicroOpCode::kSquare},
          {"Sign", MicroOpCode::kSign},
          {"Relu", MicroOpCode::kRelu},
          {"Exp", MicroOpCode::kExp},
          {"Log", MicroOpCode::kLog},
          {"Sqrt", MicroOpCode::kSqrt},
          {"Rsqrt", MicroOpCode::kRsqrt},
          {"Tanh", MicroOpCode::kTanh},
          {"Sigmoid", MicroOpCode::kSigmoid},
          {"Sin", MicroOpCode::kSin},
          {"Cos", MicroOpCode::kCos},
          {"Reciprocal", MicroOpCode::kReciprocal},
          {"Floor", MicroOpCode::kFloor},
          {"Cast", MicroOpCode::kCast},
      };
  auto it = kMap->find(op_name);
  if (it == kMap->end()) return false;
  *code = it->second;
  return true;
}

int MicroOpArity(MicroOpCode code) {
  return code <= MicroOpCode::kPow ? 2 : 1;
}

bool MicroOpSupports(MicroOpCode code, DType dtype) {
  const bool numeric = dtype == DType::kFloat32 || dtype == DType::kFloat64 ||
                       dtype == DType::kInt32 || dtype == DType::kInt64;
  if (!numeric) return false;
  const bool is_float = dtype == DType::kFloat32 || dtype == DType::kFloat64;
  switch (code) {
    case MicroOpCode::kPow:
    case MicroOpCode::kExp:
    case MicroOpCode::kLog:
    case MicroOpCode::kSqrt:
    case MicroOpCode::kRsqrt:
    case MicroOpCode::kTanh:
    case MicroOpCode::kSigmoid:
    case MicroOpCode::kSin:
    case MicroOpCode::kCos:
    case MicroOpCode::kReciprocal:
    case MicroOpCode::kFloor:
      return is_float;
    default:
      return true;
  }
}

namespace {

// Below this many output elements a fused shard is not worth a pool hop.
constexpr int64_t kFusedGrainElements = 16 * 1024;

// Elements interpreted per block. The interpreter dispatches each micro-op
// once per block and then runs a tight loop the compiler can vectorize; the
// hot registers (an instruction's operands are almost always recent results)
// stay cache-resident at this size.
constexpr int64_t kFusedBlockElements = 512;

// Strides are 0 (broadcast scalar) or 1, so specializing the four cases
// keeps every loop body a unit-stride read the vectorizer understands.
template <typename F, typename T>
void BinaryBlock(const T* a, int sa, const T* b, int sb, T* out, int64_t len) {
  if (sa == 1 && sb == 1) {
    for (int64_t i = 0; i < len; ++i) out[i] = F::template Apply<T>(a[i], b[i]);
  } else if (sa == 1) {
    const T y = b[0];
    for (int64_t i = 0; i < len; ++i) out[i] = F::template Apply<T>(a[i], y);
  } else if (sb == 1) {
    const T x = a[0];
    for (int64_t i = 0; i < len; ++i) out[i] = F::template Apply<T>(x, b[i]);
  } else {
    const T value = F::template Apply<T>(a[0], b[0]);
    for (int64_t i = 0; i < len; ++i) out[i] = value;
  }
}

template <typename F, typename T>
void UnaryBlock(const T* a, int sa, T* out, int64_t len) {
  if (sa == 1) {
    for (int64_t i = 0; i < len; ++i) out[i] = F::template Apply<T>(a[i]);
  } else {
    const T value = F::template Apply<T>(a[0]);
    for (int64_t i = 0; i < len; ++i) out[i] = value;
  }
}

// One traversal of the output index space, blocked: for each block, every
// instruction runs as one tight loop writing its own register row, and the
// published registers are copied to the kernel outputs.
template <typename T>
void RunTyped(EagerContext* ectx, const MicroProgram& program,
              const std::vector<const T*>& operands,
              const std::vector<int>& operand_stride,
              const std::vector<T*>& outputs, int64_t count) {
  const int64_t num_blocks =
      (count + kFusedBlockElements - 1) / kFusedBlockElements;
  const int64_t min_blocks =
      std::max<int64_t>(1, kFusedGrainElements / kFusedBlockElements);
  // Rows shrink with the tensor so a long program over a tiny tensor does
  // not pay for (and zero-init) full 512-element registers.
  const int64_t row_elements = std::min(kFusedBlockElements, count);
  ParallelFor(ectx, num_blocks, min_blocks, [&](int64_t block_begin,
                                                int64_t block_end) {
    // One block-length row per instruction result, owned by the shard.
    std::vector<T> regs(program.insts.size() * row_elements);
    for (int64_t block = block_begin; block < block_end; ++block) {
      const int64_t base = block * kFusedBlockElements;
      const int64_t len = std::min(kFusedBlockElements, count - base);
      // Register -> (pointer, stride) within this block.
      auto src = [&](int32_t r) -> std::pair<const T*, int> {
        if (r < program.num_operands) {
          return {operands[r] + (operand_stride[r] != 0 ? base : 0),
                  operand_stride[r]};
        }
        return {regs.data() + (r - program.num_operands) * row_elements, 1};
      };
      for (size_t j = 0; j < program.insts.size(); ++j) {
        const MicroInst& inst = program.insts[j];
        auto [pa, sa] = src(inst.a);
        T* out = regs.data() + j * row_elements;
        if (MicroOpArity(inst.opcode) == 2) {
          auto [pb, sb] = src(inst.b);
          using namespace functors;  // NOLINT(build/namespaces)
          switch (inst.opcode) {
#define TFE_FUSED_BINARY_CASE(code, F)        \
  case MicroOpCode::code:                     \
    BinaryBlock<F, T>(pa, sa, pb, sb, out, len); \
    break;
            TFE_FUSED_BINARY_CASE(kAdd, AddF)
            TFE_FUSED_BINARY_CASE(kSub, SubF)
            TFE_FUSED_BINARY_CASE(kMul, MulF)
            TFE_FUSED_BINARY_CASE(kDiv, DivF)
            TFE_FUSED_BINARY_CASE(kMaximum, MaximumF)
            TFE_FUSED_BINARY_CASE(kMinimum, MinimumF)
            TFE_FUSED_BINARY_CASE(kSquaredDifference, SquaredDifferenceF)
            TFE_FUSED_BINARY_CASE(kPow, PowF)
#undef TFE_FUSED_BINARY_CASE
            default:
              break;  // unreachable; arity == 2 covers exactly these
          }
        } else {
          using namespace functors;  // NOLINT(build/namespaces)
          switch (inst.opcode) {
#define TFE_FUSED_UNARY_CASE(code, F) \
  case MicroOpCode::code:             \
    UnaryBlock<F, T>(pa, sa, out, len); \
    break;
            TFE_FUSED_UNARY_CASE(kNeg, NegF)
            TFE_FUSED_UNARY_CASE(kAbs, AbsF)
            TFE_FUSED_UNARY_CASE(kSquare, SquareF)
            TFE_FUSED_UNARY_CASE(kSign, SignF)
            TFE_FUSED_UNARY_CASE(kRelu, ReluF)
            TFE_FUSED_UNARY_CASE(kExp, ExpF)
            TFE_FUSED_UNARY_CASE(kLog, LogF)
            TFE_FUSED_UNARY_CASE(kSqrt, SqrtF)
            TFE_FUSED_UNARY_CASE(kRsqrt, RsqrtF)
            TFE_FUSED_UNARY_CASE(kTanh, TanhF)
            TFE_FUSED_UNARY_CASE(kSigmoid, SigmoidF)
            TFE_FUSED_UNARY_CASE(kSin, SinF)
            TFE_FUSED_UNARY_CASE(kCos, CosF)
            TFE_FUSED_UNARY_CASE(kReciprocal, ReciprocalF)
            TFE_FUSED_UNARY_CASE(kFloor, FloorF)
#undef TFE_FUSED_UNARY_CASE
            case MicroOpCode::kCast:
              // Identity: foreign operands were converted to T up front.
              if (sa == 1) {
                std::copy(pa, pa + len, out);
              } else {
                std::fill(out, out + len, pa[0]);
              }
              break;
            default:
              break;  // unreachable; Decode validated the opcode
          }
        }
      }
      for (size_t o = 0; o < outputs.size(); ++o) {
        auto [p, stride] = src(program.outputs[o]);
        T* dst = outputs[o] + base;
        if (stride == 1) {
          std::copy(p, p + len, dst);
        } else {
          std::fill(dst, dst + len, p[0]);
        }
      }
    }
  });
}

Status FusedElementwiseKernel(KernelContext* ctx) {
  TFE_ASSIGN_OR_RETURN(auto encoded,
                       ctx->GetAttr<std::vector<int64_t>>("program"));
  TFE_ASSIGN_OR_RETURN(MicroProgram program, MicroProgram::Decode(encoded));
  const std::vector<Tensor>& inputs = ctx->inputs();
  if (program.num_operands != static_cast<int64_t>(inputs.size())) {
    return InvalidArgument("FusedElementwise operand count mismatch");
  }
  if (inputs.empty()) {
    return InvalidArgument("FusedElementwise requires at least one operand");
  }

  // The run dtype: explicit when the program folds casts (operands may then
  // carry foreign source dtypes), otherwise every operand's shared dtype.
  const DType dtype = ctx->GetAttrOr<DType>("dtype", inputs[0].dtype());
  Shape out_shape = inputs[0].shape();
  for (const Tensor& input : inputs) {
    if (input.num_elements() > out_shape.num_elements()) {
      out_shape = input.shape();
    }
  }
  for (const Tensor& input : inputs) {
    if (input.shape() != out_shape && input.num_elements() != 1) {
      return InvalidArgument(
          "FusedElementwise operands must match the run shape or be scalars");
    }
  }
  // A foreign-dtype operand is legal only as a kCast source; it gets
  // converted to the run dtype before interpretation.
  std::vector<bool> foreign(inputs.size(), false);
  for (size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i].dtype() == dtype) continue;
    if (!MicroOpSupports(MicroOpCode::kCast, inputs[i].dtype())) {
      return InvalidArgument("FusedElementwise operand dtype mismatch");
    }
    foreign[i] = true;
  }
  for (const MicroInst& inst : program.insts) {
    if (!MicroOpSupports(inst.opcode, dtype)) {
      return InvalidArgument("FusedElementwise opcode unsupported for dtype");
    }
    if (inst.opcode == MicroOpCode::kCast) continue;
    const auto reads_foreign = [&](int32_t r) {
      return r < program.num_operands && foreign[r];
    };
    if (reads_foreign(inst.a) ||
        (MicroOpArity(inst.opcode) == 2 && reads_foreign(inst.b))) {
      return InvalidArgument(
          "FusedElementwise foreign-dtype operand read by a non-cast op");
    }
  }

  EagerContext* ectx = ctx->eager_context();
  ectx->stats().fused_runs.fetch_add(1, std::memory_order_relaxed);
  ectx->stats().fused_ops.fetch_add(program.insts.size(),
                                    std::memory_order_relaxed);

  const int64_t count = out_shape.num_elements();
  TFE_SWITCH_NUMERIC(dtype, T, {
    // Pre-converted storage for foreign (cast-source) operands; the
    // conversion applies the exact static_cast the standalone Cast kernel
    // does, so folded runs stay bitwise identical to op-at-a-time.
    std::vector<std::vector<T>> converted;
    std::vector<const T*> operand_ptrs;
    std::vector<int> operand_stride;
    operand_ptrs.reserve(inputs.size());
    operand_stride.reserve(inputs.size());
    for (size_t i = 0; i < inputs.size(); ++i) {
      const Tensor& input = inputs[i];
      if (foreign[i]) {
        std::vector<T> buffer(input.num_elements());
        TFE_SWITCH_NUMERIC(input.dtype(), TIn, {
          const TIn* in = input.data<TIn>();
          for (int64_t k = 0; k < input.num_elements(); ++k) {
            buffer[k] = static_cast<T>(in[k]);
          }
        });
        converted.push_back(std::move(buffer));
        operand_ptrs.push_back(converted.back().data());
      } else {
        operand_ptrs.push_back(input.data<T>());
      }
      operand_stride.push_back(
          input.num_elements() == 1 && count > 1 ? 0 : 1);
    }
    std::vector<T*> output_ptrs;
    output_ptrs.reserve(program.outputs.size());
    for (size_t o = 0; o < program.outputs.size(); ++o) {
      Tensor out = ctx->AllocateOutput(static_cast<int>(o), dtype, out_shape);
      output_ptrs.push_back(out.mutable_data<T>());
    }
    RunTyped<T>(ectx, program, operand_ptrs, operand_stride, output_ptrs,
                count);
  });
  return Status::OK();
}

}  // namespace

void RegisterFusedElementwiseKernels() {
  RegisterKernel("FusedElementwise", FusedElementwiseKernel);
}

}  // namespace kernels
}  // namespace tfe
