// FusedElementwise: one kernel invocation executing a run of elementwise ops
// as a compact micro-op program in a single memory traversal.
//
// Both fusion frontends — the op-queue drain (dynamic, paper §5) and the
// graph pass in graph/passes.cpp (static, the §4.6 staged-optimization
// opportunity) — lower a recognized run to the same program encoding and the
// same interpreter, so fused execution is bitwise identical in either stage.
//
// Program encoding (the "program" attr, a vector<int64_t>):
//
//     [num_operands, num_insts,
//      opcode_0, a_0, b_0, ..., opcode_{n-1}, a_{n-1}, b_{n-1},
//      num_outputs, out_reg_0, ...]
//
// Registers [0, num_operands) hold the kernel's inputs (full tensors of the
// run shape, or broadcast scalars); register num_operands + i holds
// instruction i's result. `b` is ignored for unary opcodes. Output registers
// name which instruction results materialize as kernel outputs.
#ifndef TFE_KERNELS_FUSED_ELEMENTWISE_H_
#define TFE_KERNELS_FUSED_ELEMENTWISE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"
#include "tensor/dtype.h"

namespace tfe {
namespace kernels {

// Opcodes mirror the scalar functors in elementwise_functors.h one-for-one;
// the interpreter applies the identical expressions, which is what makes a
// fused run agree bitwise with op-at-a-time execution.
enum class MicroOpCode : int64_t {
  kAdd = 0,
  kSub,
  kMul,
  kDiv,
  kMaximum,
  kMinimum,
  kSquaredDifference,
  kPow,
  kNeg,
  kAbs,
  kSquare,
  kSign,
  kRelu,
  kExp,
  kLog,
  kSqrt,
  kRsqrt,
  kTanh,
  kSigmoid,
  kSin,
  kCos,
  kReciprocal,
  kFloor,
  // Dtype conversion into the run dtype. The kernel pre-converts foreign
  // operands with the same static_cast the standalone Cast kernel applies,
  // so inside the interpreter kCast is an identity copy; an in-run input
  // (already the run dtype) is an identity by construction.
  kCast,
};

struct MicroInst {
  MicroOpCode opcode = MicroOpCode::kAdd;
  // Register operands; `b` is ignored for unary opcodes.
  int32_t a = 0;
  int32_t b = 0;
};

struct MicroProgram {
  int64_t num_operands = 0;
  std::vector<MicroInst> insts;
  // Registers published as kernel outputs, in output order.
  std::vector<int32_t> outputs;

  int64_t num_registers() const {
    return num_operands + static_cast<int64_t>(insts.size());
  }

  std::vector<int64_t> Encode() const;
  static StatusOr<MicroProgram> Decode(const std::vector<int64_t>& encoded);
};

// Maps a primitive op name to its opcode; false when the op is not fusable.
bool MicroOpCodeFor(const std::string& op_name, MicroOpCode* code);

// 1 or 2. Only meaningful for codes produced by MicroOpCodeFor.
int MicroOpArity(MicroOpCode code);

// Transcendental opcodes require floating dtypes; arithmetic ones accept any
// numeric dtype.
bool MicroOpSupports(MicroOpCode code, DType dtype);

void RegisterFusedElementwiseKernels();

}  // namespace kernels
}  // namespace tfe

#endif  // TFE_KERNELS_FUSED_ELEMENTWISE_H_
