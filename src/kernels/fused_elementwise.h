// FusedElementwise: one kernel invocation executing a run of elementwise,
// layout, and reduction ops as a compact micro-op program in a single memory
// traversal (a fused map-reduce engine).
//
// Both fusion frontends — the op-queue drain (dynamic, paper §5) and the
// graph pass in graph/passes.cpp (static, the §4.6 staged-optimization
// opportunity) — describe a recognized run to CompileFusedRun() below and
// lower it to the same program encoding and the same interpreter, so fused
// execution is bitwise identical in either stage.
//
// Two program encodings share the "program" attr (a vector<int64_t>):
//
// v1 (legacy, first element >= 0) — pure elementwise runs:
//
//     [num_operands, num_insts,
//      opcode_0, a_0, b_0, ..., opcode_{n-1}, a_{n-1}, b_{n-1},
//      num_outputs, out_reg_0, ...]
//
// Registers [0, num_operands) hold the kernel's inputs (full tensors of the
// run shape, or broadcast scalars); register num_operands + i holds
// instruction i's result. `b` is ignored for unary opcodes. Output registers
// name which instruction results materialize as kernel outputs.
//
// v2 (extended, first element == kMicroProgramMagic) — map-reduce runs. The
// operand registers become *slots*: each names a kernel input plus an access
// descriptor (contiguous, broadcast scalar, or a strided odometer walk), so
// one input can be read under several index maps and layout ops (Transpose /
// Reshape / ExpandDims / Squeeze) fold into the run as indexed loads instead
// of cutting it. Outputs carry their own shape and store descriptor, and an
// optional reduction epilogue (Sum/Mean/Max/Min over the trailing axes of
// the evaluation space) folds the mapped values into per-chunk partial
// accumulators combined by the fixed stride-doubling tree in reduce_util.h:
//
//     [kMicroProgramMagic, num_slots, eval_rank, eval_dims...,
//      {input, kind, [rank, dims..., strides...] if strided} per slot,
//      num_insts, {opcode, a, b}*,
//      num_outputs, {reg, shape_rank, shape_dims...,
//                    kind, [rank, dims..., strides...] if strided} per output,
//      reduce_kind, [src_reg, reduce_count, out_rank, out_dims...] if any]
//
// v3 (compact, first element == kMicroProgramMagicV3) — DAG segments. Same
// layout as v2 with two changes: the header carries an explicit scratch-row
// count (num_rows, placed after eval_dims), and every instruction carries an
// explicit destination register {opcode, a, b, dst}. v1/v2 pin instruction
// i's result to register num_operands + i, so a 64-op run needs 64 scratch
// rows; v3 lets the compiler CSE identical instructions (shared
// subexpressions load once) and reuse dead rows by liveness, so a long chain
// runs in 2-3 rows regardless of length and multi-consumer values occupy one
// row read by many instructions. dst registers live in
// [num_operands, num_operands + num_rows); a register may only be read after
// an earlier instruction wrote it, and rows named by outputs or the reduce
// epilogue stay live to the end. Decode normalizes v1/v2 programs to the
// same form (dst = num_operands + i), so the interpreter has one execution
// path.
#ifndef TFE_KERNELS_FUSED_ELEMENTWISE_H_
#define TFE_KERNELS_FUSED_ELEMENTWISE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"
#include "tensor/dtype.h"
#include "tensor/shape.h"

namespace tfe {
namespace kernels {

// Opcodes mirror the scalar functors in elementwise_functors.h one-for-one;
// the interpreter applies the identical expressions, which is what makes a
// fused run agree bitwise with op-at-a-time execution.
enum class MicroOpCode : int64_t {
  kAdd = 0,
  kSub,
  kMul,
  kDiv,
  kMaximum,
  kMinimum,
  kSquaredDifference,
  kPow,
  kNeg,
  kAbs,
  kSquare,
  kSign,
  kRelu,
  kExp,
  kLog,
  kSqrt,
  kRsqrt,
  kTanh,
  kSigmoid,
  kSin,
  kCos,
  kReciprocal,
  kFloor,
  // Dtype conversion into the run dtype. The kernel pre-converts foreign
  // operands with the same static_cast the standalone Cast kernel applies,
  // so inside the interpreter kCast is an identity copy; an in-run input
  // (already the run dtype) is an identity by construction.
  kCast,
};

struct MicroInst {
  MicroOpCode opcode = MicroOpCode::kAdd;
  // Register operands; `b` is ignored for unary opcodes.
  int32_t a = 0;
  int32_t b = 0;
  // Destination register, in [num_operands, num_operands + num_rows).
  // Encoded only by v3; Decode normalizes v1/v2 to dst = num_operands + i.
  int32_t dst = -1;
};

// First element of a v2-encoded program (v1 starts with num_operands >= 0).
constexpr int64_t kMicroProgramMagic = -2;
// First element of a v3 (compact DAG) program.
constexpr int64_t kMicroProgramMagicV3 = -3;

// How an operand slot reads its input — or an output stores its register —
// relative to the flat evaluation index.
enum class MicroAccessKind : int64_t {
  // v1 semantics: broadcast scalar when the input has one element and the
  // run has more, contiguous otherwise.
  kAuto = 0,
  kContiguous = 1,  // offset == flat evaluation index
  kScalar = 2,      // stride-0 broadcast of a single element
  // offset = dot(decompose(flat, dims), strides); product(dims) equals the
  // evaluation count. Expresses transposed walks and broadcast (stride-0)
  // dims in one odometer.
  kStrided = 3,
};

struct MicroAccess {
  MicroAccessKind kind = MicroAccessKind::kAuto;
  std::vector<int64_t> dims;     // kStrided only
  std::vector<int64_t> strides;  // kStrided only; parallel to dims

  bool operator==(const MicroAccess& o) const {
    return kind == o.kind && dims == o.dims && strides == o.strides;
  }
};

// One operand register of a v2 program: which kernel input it reads, how.
struct MicroOperandSlot {
  int64_t input = -1;  // kernel input index; -1 in v1 (slot i reads input i)
  MicroAccess access;
};

// One kernel output of a v2 program: which register, the allocated shape,
// and how register rows land in the output buffer.
struct MicroOutputSpec {
  int32_t reg = 0;
  std::vector<int64_t> shape;
  MicroAccess store;
};

enum class MicroReduceKind : int64_t {
  kNone = 0,
  kSum = 1,
  kMean = 2,
  kMax = 3,
  kMin = 4,
};

// Reduction epilogue: fold `src` over trailing strips of `reduce_count`
// evaluation elements into one extra kernel output (always the last one).
struct MicroReduce {
  MicroReduceKind kind = MicroReduceKind::kNone;
  int32_t src = 0;
  int64_t reduce_count = 1;
  std::vector<int64_t> shape;  // reduce output dims
};

struct MicroProgram {
  int64_t num_operands = 0;
  std::vector<MicroInst> insts;
  // Registers published as kernel outputs, in output order (the reduction
  // epilogue's output is extra and always last; it is not listed here).
  std::vector<int32_t> outputs;

  // --- v2 extensions (engaged when `extended` is true) ---------------------
  bool extended = false;
  std::vector<int64_t> eval_dims;            // the evaluation space
  std::vector<MicroOperandSlot> slots;       // size == num_operands
  std::vector<MicroOutputSpec> output_specs;  // parallel to `outputs`
  MicroReduce reduce;

  // --- v3 extensions (engaged when `compact` is true) ----------------------
  // Compact programs carry explicit dst registers and a scratch-row count;
  // CompactProgram() below rewrites a freshly compiled v2 program into this
  // form (CSE + liveness-driven row reuse).
  bool compact = false;
  int64_t num_rows = 0;  // scratch rows; insts[i].dst - num_operands < this

  int64_t num_registers() const {
    return num_operands + (compact ? num_rows
                                   : static_cast<int64_t>(insts.size()));
  }

  std::vector<int64_t> Encode() const;
  static StatusOr<MicroProgram> Decode(const std::vector<int64_t>& encoded);
};

// Maps a primitive op name to its opcode; false when the op is not fusable.
bool MicroOpCodeFor(const std::string& op_name, MicroOpCode* code);

// 1 or 2. Only meaningful for codes produced by MicroOpCodeFor.
int MicroOpArity(MicroOpCode code);

// Transcendental opcodes require floating dtypes; arithmetic ones accept any
// numeric dtype.
bool MicroOpSupports(MicroOpCode code, DType dtype);

// Layout ops the run compiler folds as indexed loads (no instruction):
// Transpose, Reshape, ExpandDims, Squeeze.
bool MicroLayoutOp(const std::string& op_name);

// Reductions the run compiler accepts as epilogues; maps Sum/Mean/Max/Min.
bool MicroReduceKindFor(const std::string& op_name, MicroReduceKind* kind);

// True when `shape` broadcasts to `out` under trailing-dim alignment (every
// trailing dim equal or 1) — the layouts BroadcastStrides expresses.
bool BroadcastsTo(const Shape& shape, const Shape& out);

// ---- Run compiler ----------------------------------------------------------
//
// Both fusion frontends describe a candidate run as a vector of FusedRunOp
// (one per member, in queue/topological order) plus the deduplicated
// external operands, and get back a v2 program. Any unsupported pattern —
// layout under an incompatible index map, a non-trailing reduction,
// conflicting index maps for a multiply-consumed producer — returns an
// error, and the caller falls back to op-at-a-time execution (the drain) or
// leaves the span unfused (the graph pass).

struct FusedRunArg {
  int producer = -1;  // in-run member index, or -1
  int operand = -1;   // external operand index, or -1
};

struct FusedRunOp {
  std::string op;
  DType dtype = DType::kFloat32;  // the member's output dtype
  Shape shape;                    // the member's output shape
  std::vector<FusedRunArg> args;
  std::vector<int64_t> perm;  // Transpose only
  std::vector<int64_t> axes;  // reductions only ("axis" attr; empty = all)
  bool materialize = false;   // publish this member's value as an output
};

struct FusedRunOperand {
  DType dtype = DType::kFloat32;
  Shape shape;
  // The caller proved this operand's buffer is uniquely owned (no
  // outstanding tensors/handles, tape not watching) and is willing to have
  // the run overwrite it in place. Only the async drain sets this; the
  // static graph pass has no ownership information and leaves it false.
  bool may_donate = false;
};

struct CompiledRun {
  MicroProgram program;
  // Member index per kernel output, in kernel-output order; when the run
  // ends in a reduction its member is last.
  std::vector<int> output_members;
  bool has_cast = false;
  bool has_reduce = false;
  // Donation plan, parallel to program.outputs: the operand index whose
  // buffer output k writes in place, or -1 for a fresh allocation. Assigned
  // only where the interpreter's block order proves every read of the donor
  // precedes the overwriting store (see AssignDonations in the .cpp).
  std::vector<int> donations;
};

StatusOr<CompiledRun> CompileFusedRun(const std::vector<FusedRunOp>& ops,
                                      const std::vector<FusedRunOperand>& operands,
                                      DType run_dtype);

// Rewrites a one-row-per-instruction program into v3 compact form: dedups
// identical (opcode, a, b) instructions (shared subexpressions compute
// once), then reassigns destination rows by liveness so dead rows are
// reused. References in later instructions, output specs, and the reduce
// epilogue are remapped. Rows feeding outputs or the reduce epilogue stay
// live to the end of the program. Exposed for tests; CompileFusedRun applies
// it to every program it emits.
void CompactProgram(MicroProgram* program);

void RegisterFusedElementwiseKernels();

}  // namespace kernels
}  // namespace tfe

#endif  // TFE_KERNELS_FUSED_ELEMENTWISE_H_
