// Reduction kernels: Sum, Mean, Max, Min over attr-specified axes, ArgMax.
#include <algorithm>
#include <limits>

#include "kernels/kernel_util.h"
#include "kernels/reduce_util.h"

namespace tfe {
namespace kernels {
namespace {

struct ReductionPlan {
  Shape out_shape;            // after keep_dims handling
  std::vector<bool> reduced;  // per input dim
  int64_t reduce_count = 1;   // elements folded into each output
};

StatusOr<ReductionPlan> MakePlan(KernelContext* ctx, const Shape& in) {
  std::vector<int64_t> axes =
      ctx->GetAttrOr<std::vector<int64_t>>("axis", {});
  bool keep_dims = ctx->GetAttrOr<bool>("keep_dims", false);
  ReductionPlan plan;
  plan.reduced.assign(in.rank(), axes.empty());
  for (int64_t axis : axes) {
    if (axis < 0) axis += in.rank();
    if (axis < 0 || axis >= in.rank()) {
      return InvalidArgument("Reduction axis out of range");
    }
    plan.reduced[axis] = true;
  }
  std::vector<int64_t> dims;
  for (int i = 0; i < in.rank(); ++i) {
    if (plan.reduced[i]) {
      plan.reduce_count *= in.dims()[i];
      if (keep_dims) dims.push_back(1);
    } else {
      dims.push_back(in.dims()[i]);
    }
  }
  plan.out_shape = Shape(std::move(dims));
  return plan;
}

enum class Reduction { kSum, kMean, kMax, kMin };

// Below this many element visits per shard reductions stay serial.
constexpr int64_t kReduceShardWork = 1 << 18;

// True when every reduced dim follows every kept dim, i.e. the input is a
// row-major [outer, reduce_count] matrix and each output element folds one
// contiguous block. Only that layout is sharded: each output's accumulation
// is fully owned by one shard, so the parallel result is bitwise identical.
bool IsTrailingReduction(const ReductionPlan& plan) {
  bool seen_reduced = false;
  for (bool reduced : plan.reduced) {
    if (reduced) {
      seen_reduced = true;
    } else if (seen_reduced) {
      return false;
    }
  }
  return true;
}

template <typename T>
void Reduce(EagerContext* ectx, const Tensor& x, Tensor& out,
            const ReductionPlan& plan, Reduction kind) {
  const T* in = x.data<T>();
  T* result = out.mutable_data<T>();
  const int rank = x.shape().rank();
  const int64_t out_count = out.num_elements();

  T init;
  switch (kind) {
    case Reduction::kMax:
      init = std::numeric_limits<T>::lowest();
      break;
    case Reduction::kMin:
      init = std::numeric_limits<T>::max();
      break;
    default:
      init = T(0);
  }
  for (int64_t i = 0; i < out_count; ++i) result[i] = init;

  if (IsTrailingReduction(plan) && plan.reduce_count > 0) {
    // Each output folds one contiguous strip through the canonical
    // chunk/tree geometry in reduce_util.h — the same geometry the fused
    // map-reduce epilogue uses, so fused and standalone reductions agree
    // bitwise however either of them is sharded.
    const int64_t rc = plan.reduce_count;
    const ReduceAccumKind akind = kind == Reduction::kMax
                                      ? ReduceAccumKind::kMax
                                      : kind == Reduction::kMin
                                            ? ReduceAccumKind::kMin
                                            : ReduceAccumKind::kSum;
    const int64_t min_outputs =
        std::max<int64_t>(1, kReduceShardWork / std::max<int64_t>(rc, 1));
    ParallelFor(ectx, out_count, min_outputs, [&](int64_t begin, int64_t end) {
      for (int64_t o = begin; o < end; ++o) {
        T acc = ReduceStripSerial(akind, in + o * rc, rc);
        if (kind == Reduction::kMean) acc /= static_cast<T>(rc);
        result[o] = acc;
      }
    });
    return;
  }

  // General layouts stay serial: an input-order walk interleaves outputs
  // across shard boundaries, so any split would either race or change the
  // fp accumulation order.
  // Map each input element to its output slot via the non-reduced dims.
  std::vector<int64_t> out_stride_of_dim(rank, 0);
  {
    int64_t stride = 1;
    for (int i = rank - 1; i >= 0; --i) {
      if (!plan.reduced[i]) {
        out_stride_of_dim[i] = stride;
        stride *= x.shape().dims()[i];
      }
    }
  }
  std::vector<int64_t> coord(rank, 0);
  int64_t out_off = 0;
  const int64_t in_count = x.num_elements();
  for (int64_t i = 0; i < in_count; ++i) {
    switch (kind) {
      case Reduction::kSum:
      case Reduction::kMean:
        result[out_off] += in[i];
        break;
      case Reduction::kMax:
        result[out_off] = std::max(result[out_off], in[i]);
        break;
      case Reduction::kMin:
        result[out_off] = std::min(result[out_off], in[i]);
        break;
    }
    for (int d = rank - 1; d >= 0; --d) {
      out_off += out_stride_of_dim[d];
      if (++coord[d] < x.shape().dims()[d]) break;
      coord[d] = 0;
      out_off -= out_stride_of_dim[d] * x.shape().dims()[d];
    }
  }
  if (kind == Reduction::kMean && plan.reduce_count > 0) {
    for (int64_t i = 0; i < out_count; ++i) {
      result[i] /= static_cast<T>(plan.reduce_count);
    }
  }
}

template <Reduction kKind>
Status ReductionKernel(KernelContext* ctx) {
  const Tensor& x = ctx->input(0);
  TFE_ASSIGN_OR_RETURN(ReductionPlan plan, MakePlan(ctx, x.shape()));
  Tensor out = ctx->AllocateOutput(0, x.dtype(), plan.out_shape);
  TFE_SWITCH_NUMERIC(x.dtype(), T,
                     { Reduce<T>(ctx->eager_context(), x, out, plan, kKind); });
  return Status::OK();
}

Status ArgMaxKernel(KernelContext* ctx) {
  const Tensor& x = ctx->input(0);
  TFE_ASSIGN_OR_RETURN(int64_t axis, ctx->GetAttr<int64_t>("axis"));
  if (axis < 0) axis += x.shape().rank();
  if (axis < 0 || axis >= x.shape().rank()) {
    return InvalidArgument("ArgMax axis out of range");
  }
  std::vector<int64_t> dims;
  for (int i = 0; i < x.shape().rank(); ++i) {
    if (i != axis) dims.push_back(x.shape().dims()[i]);
  }
  Tensor out = ctx->AllocateOutput(0, DType::kInt64, Shape(dims));

  const int64_t axis_size = x.shape().dim(static_cast<int>(axis));
  int64_t inner = 1;
  for (int i = static_cast<int>(axis) + 1; i < x.shape().rank(); ++i) {
    inner *= x.shape().dims()[i];
  }
  int64_t outer = x.num_elements() / (axis_size * inner);

  TFE_SWITCH_NUMERIC(x.dtype(), T, {
    const T* in = x.data<T>();
    int64_t* result = out.mutable_data<int64_t>();
    // Each outer slice owns a disjoint result range and every argmax scan
    // is per-element, so sharding over `outer` changes nothing numerically.
    const int64_t slice_work = axis_size * inner;
    const int64_t min_outer = std::max<int64_t>(
        1, kReduceShardWork / std::max<int64_t>(slice_work, 1));
    ParallelFor(ctx->eager_context(), outer, min_outer,
                [&](int64_t begin, int64_t end) {
      for (int64_t o = begin; o < end; ++o) {
        for (int64_t i = 0; i < inner; ++i) {
          T best = in[o * axis_size * inner + i];
          int64_t best_index = 0;
          for (int64_t a = 1; a < axis_size; ++a) {
            T value = in[(o * axis_size + a) * inner + i];
            if (value > best) {
              best = value;
              best_index = a;
            }
          }
          result[o * inner + i] = best_index;
        }
      }
    });
  });
  return Status::OK();
}

}  // namespace

void RegisterReductionKernels() {
  RegisterKernel("Sum", ReductionKernel<Reduction::kSum>);
  RegisterKernel("Mean", ReductionKernel<Reduction::kMean>);
  RegisterKernel("Max", ReductionKernel<Reduction::kMax>);
  RegisterKernel("Min", ReductionKernel<Reduction::kMin>);
  RegisterKernel("ArgMax", ArgMaxKernel);
}

}  // namespace kernels
}  // namespace tfe
