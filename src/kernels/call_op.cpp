// The Call kernel: graph functions are executed *by an operation* (paper
// §4.1), which is what makes staged functions compose, run on devices, and
// appear on gradient tapes like any primitive.
#include "executor/executor.h"
#include "graph/passes.h"
#include "kernels/kernel_util.h"
#include "runtime/eager_context.h"

namespace tfe {
namespace kernels {
namespace {

Status CallKernel(KernelContext* ctx) {
  TFE_ASSIGN_OR_RETURN(auto function_name,
                       ctx->GetAttr<std::string>("function"));
  EagerContext* ectx = ctx->eager_context();
  TFE_ASSIGN_OR_RETURN(auto function, ectx->functions().Find(function_name));
  ectx->stats().function_calls.fetch_add(1, std::memory_order_relaxed);

  Device* device = ctx->device();
  uint64_t start_ns = ctx->start_ns();
  // Simulated-TPU path: placing a staged computation on a TPU compiles the
  // whole function once (paper §4.4); the compile cost is paid on first
  // call and amortized thereafter, and execution gets the fusion discount.
  const bool compiled = device->kind() == DeviceKind::kTpu;
  if (compiled) {
    start_ns += device->CompileCostNs("function:" + function_name);
    // Fixed per-invocation accelerator launch + infeed/outfeed cost.
    start_ns += device->cost_params().compiled_call_overhead_ns;
  }

  // On real compute devices, run the lazily-built execution variant with
  // elementwise runs fused. The original function is what autodiff and
  // serialization see; simulated accelerators keep the unfused graph so
  // their per-node cost model is undisturbed.
  std::shared_ptr<GraphFunction> to_run = function;
  if (ectx->fuse_elementwise() && !device->is_accelerator() &&
      device->executes_kernels()) {
    auto fused = function->GetOrBuildExecutionVariant(
        [&]() -> std::shared_ptr<GraphFunction> {
          auto variant = std::make_shared<GraphFunction>(function->name() +
                                                         "__fused_ew");
          if (!CloneGraphFunctionInto(*function, *variant).ok()) return nullptr;
          passes::PassStats pstats;
          if (!passes::FuseElementwise(*variant, &pstats).ok()) return nullptr;
          if (pstats.fused_runs == 0) return nullptr;  // nothing to gain
          return variant;
        });
    if (fused != nullptr) to_run = std::move(fused);
  }

  Executor executor(ectx);
  // Nested calls (this kernel running on an executor thread) execute inline
  // so pool threads never block waiting on the pool.
  const bool parallel = !Executor::InExecutor();
  TFE_ASSIGN_OR_RETURN(
      Executor::Result result,
      executor.Run(*to_run, ctx->inputs(), device, start_ns, compiled,
                   parallel, ctx->rng_stream()));
  for (size_t i = 0; i < result.outputs.size(); ++i) {
    ctx->SetOutput(static_cast<int>(i), result.outputs[i]);
  }
  ctx->set_completion_ns(result.finish_ns);
  return Status::OK();
}

}  // namespace

void RegisterCallKernels() { RegisterKernel("Call", CallKernel); }

}  // namespace kernels
}  // namespace tfe
