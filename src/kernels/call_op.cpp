// The Call kernel: graph functions are executed *by an operation* (paper
// §4.1), which is what makes staged functions compose, run on devices, and
// appear on gradient tapes like any primitive.
#include <cstdlib>

#include "executor/executor.h"
#include "graph/passes.h"
#include "kernels/kernel_util.h"
#include "runtime/eager_context.h"

namespace tfe {
namespace kernels {
namespace {

// Recursive graph functions (self/mutual recursion via Call) need a depth
// cap: an unbounded recursion would otherwise exhaust the host stack, since
// nested calls execute inline on the calling thread. Overflow surfaces as a
// FailedPrecondition that poisons the call's outputs like any deferred
// kernel error. TFE_MAX_CALL_DEPTH overrides the default.
int64_t MaxCallDepth() {
  static const int64_t cap = [] {
    if (const char* env = std::getenv("TFE_MAX_CALL_DEPTH")) {
      int64_t v = std::atoll(env);
      if (v > 0) return v;
    }
    return static_cast<int64_t>(64);
  }();
  return cap;
}

thread_local int64_t t_call_depth = 0;

Status CallKernel(KernelContext* ctx) {
  TFE_ASSIGN_OR_RETURN(auto function_name,
                       ctx->GetAttr<std::string>("function"));
  EagerContext* ectx = ctx->eager_context();
  TFE_ASSIGN_OR_RETURN(auto function, ectx->functions().Find(function_name));
  ectx->stats().function_calls.fetch_add(1, std::memory_order_relaxed);

  // Depth accounting is per-thread, which matches execution: a top-level
  // call's nested Call kernels all run inline on one executor thread.
  if (t_call_depth >= MaxCallDepth()) {
    return FailedPrecondition(
        "Call recursion depth exceeded TFE_MAX_CALL_DEPTH (" +
        std::to_string(MaxCallDepth()) + ") in function " + function_name);
  }
  struct DepthGuard {
    DepthGuard() { ++t_call_depth; }
    ~DepthGuard() { --t_call_depth; }
  } depth_guard;

  Device* device = ctx->device();
  uint64_t start_ns = ctx->start_ns();
  // Simulated-TPU path: placing a staged computation on a TPU compiles the
  // whole function once (paper §4.4); the compile cost is paid on first
  // call and amortized thereafter, and execution gets the fusion discount.
  const bool compiled = device->kind() == DeviceKind::kTpu;
  if (compiled) {
    start_ns += device->CompileCostNs("function:" + function_name);
    // Fixed per-invocation accelerator launch + infeed/outfeed cost.
    start_ns += device->cost_params().compiled_call_overhead_ns;
  }

  // On real compute devices, run the lazily-built execution variant with
  // elementwise runs fused (the helper also pre-builds variants for any
  // Cond/While subfunctions this graph references). The original function is
  // what autodiff and serialization see; simulated accelerators keep the
  // unfused graph so their per-node cost model is undisturbed.
  std::shared_ptr<GraphFunction> to_run =
      passes::FusedExecutionVariant(ectx, device, function);

  Executor executor(ectx);
  // Nested calls (this kernel running on an executor thread) execute inline
  // so pool threads never block waiting on the pool.
  const bool parallel = !Executor::InExecutor();
  TFE_ASSIGN_OR_RETURN(
      Executor::Result result,
      executor.Run(*to_run, ctx->inputs(), device, start_ns, compiled,
                   parallel, ctx->rng_stream()));
  for (size_t i = 0; i < result.outputs.size(); ++i) {
    ctx->SetOutput(static_cast<int>(i), result.outputs[i]);
  }
  ctx->set_completion_ns(result.finish_ns);
  return Status::OK();
}

}  // namespace

void RegisterCallKernels() { RegisterKernel("Call", CallKernel); }

}  // namespace kernels
}  // namespace tfe
