// HostFunc: the py_func analog (paper §4.7) — an operation whose attr is an
// imperative host-language callback, letting users embed arbitrary
// imperative code inside a dataflow graph.
#include "kernels/kernel_util.h"
#include "staging/trace_context.h"
#include "support/strings.h"

namespace tfe {
namespace kernels {
namespace {

Status HostFuncKernel(KernelContext* ctx) {
  TFE_ASSIGN_OR_RETURN(auto func,
                       ctx->GetAttr<std::shared_ptr<HostFunc>>("func"));
  if (func == nullptr || !func->fn) {
    return InvalidArgument("HostFunc has no callback");
  }
  // The callback runs imperatively even when this node executes inside a
  // graph ("py_func returns control to a single-threaded [interpreter]").
  InitScope imperative;
  TFE_ASSIGN_OR_RETURN(std::vector<Tensor> outputs, func->fn(ctx->inputs()));
  for (size_t i = 0; i < outputs.size(); ++i) {
    if (!outputs[i].defined() || outputs[i].is_symbolic()) {
      return InvalidArgument(strings::StrCat(
          "HostFunc '", func->name, "' output ", i, " is not concrete"));
    }
    ctx->SetOutput(static_cast<int>(i), outputs[i]);
  }
  return Status::OK();
}

}  // namespace

void RegisterHostFuncKernels() { RegisterKernel("HostFunc", HostFuncKernel); }

}  // namespace kernels
}  // namespace tfe
