// Softmax family: Softmax, LogSoftmax (last axis) and
// SparseSoftmaxCrossEntropyWithLogits.
#include <algorithm>
#include <cmath>

#include "kernels/kernel_util.h"

namespace tfe {
namespace kernels {
namespace {

template <typename T>
void RowSoftmax(const T* in, T* out, int64_t cols, bool log_form) {
  T max_value = in[0];
  for (int64_t c = 1; c < cols; ++c) max_value = std::max(max_value, in[c]);
  T sum = T(0);
  for (int64_t c = 0; c < cols; ++c) {
    out[c] = std::exp(in[c] - max_value);
    sum += out[c];
  }
  if (log_form) {
    T log_sum = std::log(sum);
    for (int64_t c = 0; c < cols; ++c) {
      out[c] = in[c] - max_value - log_sum;
    }
  } else {
    for (int64_t c = 0; c < cols; ++c) out[c] /= sum;
  }
}

template <bool kLogForm>
Status SoftmaxKernel(KernelContext* ctx) {
  const Tensor& x = ctx->input(0);
  if (x.shape().rank() < 1) {
    return InvalidArgument("Softmax requires rank >= 1");
  }
  Tensor out = ctx->AllocateOutput(0, x.dtype(), x.shape());
  const int64_t cols = x.shape().dim(x.shape().rank() - 1);
  const int64_t rows = x.num_elements() / cols;
  TFE_SWITCH_FLOAT(x.dtype(), T, {
    const T* in = x.data<T>();
    T* result = out.mutable_data<T>();
    for (int64_t r = 0; r < rows; ++r) {
      RowSoftmax<T>(in + r * cols, result + r * cols, cols, kLogForm);
    }
  });
  return Status::OK();
}

// inputs: logits [b,c], labels int [b]; outputs: loss [b], backprop [b,c]
// (backprop = softmax(logits) - one_hot(labels), the cached gradient).
Status SparseXentKernel(KernelContext* ctx) {
  const Tensor& logits = ctx->input(0);
  const Tensor& labels = ctx->input(1);
  if (logits.shape().rank() != 2 || labels.shape().rank() != 1) {
    return InvalidArgument("SparseXent expects logits [b,c], labels [b]");
  }
  if (!IsInteger(labels.dtype())) {
    return InvalidArgument("SparseXent labels must be integer");
  }
  const int64_t batch = logits.shape().dim(0);
  const int64_t classes = logits.shape().dim(1);
  if (labels.shape().dim(0) != batch) {
    return InvalidArgument("SparseXent batch mismatch");
  }
  Tensor loss = ctx->AllocateOutput(0, logits.dtype(), Shape({batch}));
  Tensor backprop = ctx->AllocateOutput(1, logits.dtype(), logits.shape());

  TFE_SWITCH_FLOAT(logits.dtype(), T, {
    const T* in = logits.data<T>();
    T* loss_out = loss.mutable_data<T>();
    T* grad_out = backprop.mutable_data<T>();
    for (int64_t b = 0; b < batch; ++b) {
      int64_t label = labels.dtype() == DType::kInt32
                          ? labels.data<int32_t>()[b]
                          : labels.data<int64_t>()[b];
      if (label < 0 || label >= classes) {
        return OutOfRange("SparseXent label out of range");
      }
      const T* row = in + b * classes;
      T* grad_row = grad_out + b * classes;
      // log-softmax for numerical stability.
      T max_value = row[0];
      for (int64_t c = 1; c < classes; ++c) {
        max_value = std::max(max_value, row[c]);
      }
      T sum = T(0);
      for (int64_t c = 0; c < classes; ++c) {
        sum += std::exp(row[c] - max_value);
      }
      T log_sum = std::log(sum);
      loss_out[b] = -(row[label] - max_value - log_sum);
      for (int64_t c = 0; c < classes; ++c) {
        grad_row[c] = std::exp(row[c] - max_value - log_sum);
      }
      grad_row[label] -= T(1);
    }
  });
  return Status::OK();
}

}  // namespace

void RegisterSoftmaxKernels() {
  RegisterKernel("Softmax", SoftmaxKernel<false>);
  RegisterKernel("LogSoftmax", SoftmaxKernel<true>);
  RegisterKernel("SparseSoftmaxCrossEntropyWithLogits", SparseXentKernel);
}

}  // namespace kernels
}  // namespace tfe
