// 2-D convolution kernels (NHWC activations, HWIO filters) and their
// backprops. Direct loops — clarity over peak FLOPs; ResNet-scale benchmark
// timing comes from the device cost model, and numerics are validated on
// small shapes.
#include <algorithm>
#include <vector>

#include "kernels/kernel_util.h"

namespace tfe {
namespace kernels {
namespace {

struct ConvGeometry {
  int64_t batch, in_h, in_w, in_c;
  int64_t k_h, k_w, out_c;
  int64_t stride_h, stride_w;
  int64_t out_h, out_w;
  int64_t pad_top, pad_left;
};

StatusOr<ConvGeometry> MakeGeometry(const Shape& input, const Shape& filter,
                                    const std::vector<int64_t>& strides,
                                    const std::string& padding) {
  if (input.rank() != 4 || filter.rank() != 4 || strides.size() != 2) {
    return InvalidArgument("Conv2D expects NHWC input, HWIO filter, 2 strides");
  }
  ConvGeometry g;
  g.batch = input.dim(0);
  g.in_h = input.dim(1);
  g.in_w = input.dim(2);
  g.in_c = input.dim(3);
  g.k_h = filter.dim(0);
  g.k_w = filter.dim(1);
  if (filter.dim(2) != g.in_c) {
    return InvalidArgument("Conv2D filter in-channels mismatch");
  }
  g.out_c = filter.dim(3);
  g.stride_h = strides[0];
  g.stride_w = strides[1];
  if (g.stride_h <= 0 || g.stride_w <= 0) {
    return InvalidArgument("Conv2D strides must be positive");
  }
  if (padding == "SAME") {
    g.out_h = (g.in_h + g.stride_h - 1) / g.stride_h;
    g.out_w = (g.in_w + g.stride_w - 1) / g.stride_w;
    int64_t pad_h = std::max<int64_t>(
        (g.out_h - 1) * g.stride_h + g.k_h - g.in_h, 0);
    int64_t pad_w = std::max<int64_t>(
        (g.out_w - 1) * g.stride_w + g.k_w - g.in_w, 0);
    g.pad_top = pad_h / 2;
    g.pad_left = pad_w / 2;
  } else if (padding == "VALID") {
    if (g.k_h > g.in_h || g.k_w > g.in_w) {
      return InvalidArgument("Conv2D VALID window larger than input");
    }
    g.out_h = (g.in_h - g.k_h) / g.stride_h + 1;
    g.out_w = (g.in_w - g.k_w) / g.stride_w + 1;
    g.pad_top = 0;
    g.pad_left = 0;
  } else {
    return InvalidArgument("Unknown padding: " + padding);
  }
  return g;
}

// Minimum multiply-adds worth one shard; below it the kernels stay serial.
constexpr int64_t kConvShardFlops = 1 << 20;

template <typename T>
void ConvForward(EagerContext* ectx, const ConvGeometry& g, const T* x,
                 const T* f, T* y) {
  // Shard over (n, oh) output rows: each writes a disjoint slice of y and
  // keeps the serial per-element accumulation order.
  const int64_t rows = g.batch * g.out_h;
  const int64_t row_flops = g.out_w * g.k_h * g.k_w * g.in_c * g.out_c;
  const int64_t min_rows =
      std::max<int64_t>(1, kConvShardFlops / std::max<int64_t>(row_flops, 1));
  ParallelFor(ectx, rows, min_rows, [&](int64_t row_begin, int64_t row_end) {
    for (int64_t row = row_begin; row < row_end; ++row) {
      const int64_t n = row / g.out_h;
      const int64_t oh = row % g.out_h;
      for (int64_t ow = 0; ow < g.out_w; ++ow) {
        T* out = y + ((n * g.out_h + oh) * g.out_w + ow) * g.out_c;
        for (int64_t kh = 0; kh < g.k_h; ++kh) {
          int64_t ih = oh * g.stride_h + kh - g.pad_top;
          if (ih < 0 || ih >= g.in_h) continue;
          for (int64_t kw = 0; kw < g.k_w; ++kw) {
            int64_t iw = ow * g.stride_w + kw - g.pad_left;
            if (iw < 0 || iw >= g.in_w) continue;
            const T* in = x + ((n * g.in_h + ih) * g.in_w + iw) * g.in_c;
            const T* weights = f + (kh * g.k_w + kw) * g.in_c * g.out_c;
            for (int64_t ic = 0; ic < g.in_c; ++ic) {
              T xv = in[ic];
              if (xv == T(0)) continue;
              const T* w_row = weights + ic * g.out_c;
              for (int64_t oc = 0; oc < g.out_c; ++oc) {
                out[oc] += xv * w_row[oc];
              }
            }
          }
        }
      }
    }
  });
}

template <typename T>
void ConvBackpropInput(EagerContext* ectx, const ConvGeometry& g, const T* f,
                       const T* dy, T* dx) {
  // Output rows of dy scatter into overlapping dx rows, so the only
  // write-disjoint partition is per batch image.
  const int64_t image_flops =
      g.out_h * g.out_w * g.k_h * g.k_w * g.in_c * g.out_c;
  const int64_t min_images =
      std::max<int64_t>(1, kConvShardFlops / std::max<int64_t>(image_flops, 1));
  ParallelFor(ectx, g.batch, min_images, [&](int64_t n_begin, int64_t n_end) {
    for (int64_t n = n_begin; n < n_end; ++n) {
      for (int64_t oh = 0; oh < g.out_h; ++oh) {
        for (int64_t ow = 0; ow < g.out_w; ++ow) {
          const T* grad = dy + ((n * g.out_h + oh) * g.out_w + ow) * g.out_c;
          for (int64_t kh = 0; kh < g.k_h; ++kh) {
            int64_t ih = oh * g.stride_h + kh - g.pad_top;
            if (ih < 0 || ih >= g.in_h) continue;
            for (int64_t kw = 0; kw < g.k_w; ++kw) {
              int64_t iw = ow * g.stride_w + kw - g.pad_left;
              if (iw < 0 || iw >= g.in_w) continue;
              T* din = dx + ((n * g.in_h + ih) * g.in_w + iw) * g.in_c;
              const T* weights = f + (kh * g.k_w + kw) * g.in_c * g.out_c;
              for (int64_t ic = 0; ic < g.in_c; ++ic) {
                const T* w_row = weights + ic * g.out_c;
                T acc = T(0);
                for (int64_t oc = 0; oc < g.out_c; ++oc) {
                  acc += grad[oc] * w_row[oc];
                }
                din[ic] += acc;
              }
            }
          }
        }
      }
    }
  });
}

// Accumulates the filter-gradient contribution of output rows
// [row_begin, row_end) (rows enumerate (n, oh) pairs) into `df`, in the
// same element order the old serial kernel used.
template <typename T>
void AccumulateFilterRows(const ConvGeometry& g, const T* x, const T* dy,
                          int64_t row_begin, int64_t row_end, T* df) {
  for (int64_t row = row_begin; row < row_end; ++row) {
    const int64_t n = row / g.out_h;
    const int64_t oh = row % g.out_h;
    for (int64_t ow = 0; ow < g.out_w; ++ow) {
      const T* grad = dy + ((n * g.out_h + oh) * g.out_w + ow) * g.out_c;
      for (int64_t kh = 0; kh < g.k_h; ++kh) {
        int64_t ih = oh * g.stride_h + kh - g.pad_top;
        if (ih < 0 || ih >= g.in_h) continue;
        for (int64_t kw = 0; kw < g.k_w; ++kw) {
          int64_t iw = ow * g.stride_w + kw - g.pad_left;
          if (iw < 0 || iw >= g.in_w) continue;
          const T* in = x + ((n * g.in_h + ih) * g.in_w + iw) * g.in_c;
          T* weights = df + (kh * g.k_w + kw) * g.in_c * g.out_c;
          for (int64_t ic = 0; ic < g.in_c; ++ic) {
            T xv = in[ic];
            if (xv == T(0)) continue;
            T* w_row = weights + ic * g.out_c;
            for (int64_t oc = 0; oc < g.out_c; ++oc) {
              w_row[oc] += xv * grad[oc];
            }
          }
        }
      }
    }
  }
}

// Every (n, oh, ow) position accumulates into the one shared filter
// gradient, so a direct row partition would race. Instead each of a fixed
// number of chunks accumulates into its own partial gradient and the
// partials merge in a stride-doubling tree. The chunk count and every
// summation order are functions of the geometry alone — never of the pool
// size or scheduling — so the result is bitwise identical run-to-run and
// with intra-op parallelism on or off.
template <typename T>
void ConvBackpropFilter(EagerContext* ectx, const ConvGeometry& g, const T* x,
                        const T* dy, T* df) {
  const int64_t rows = g.batch * g.out_h;
  const int64_t row_flops = g.out_w * g.k_h * g.k_w * g.in_c * g.out_c;
  const int64_t filter_size = g.k_h * g.k_w * g.in_c * g.out_c;
  // One chunk per kConvShardFlops of work, capped so tiny problems skip the
  // partial-buffer machinery entirely.
  const int64_t worthwhile =
      rows * row_flops / std::max<int64_t>(kConvShardFlops, 1);
  const int64_t num_chunks =
      std::min<int64_t>(std::min<int64_t>(16, rows),
                        std::max<int64_t>(worthwhile, 1));
  if (num_chunks <= 1) {
    AccumulateFilterRows(g, x, dy, 0, rows, df);
    return;
  }

  std::vector<std::vector<T>> partials(num_chunks);
  ParallelFor(ectx, num_chunks, 1, [&](int64_t c_begin, int64_t c_end) {
    for (int64_t c = c_begin; c < c_end; ++c) {
      partials[c].assign(filter_size, T(0));
      AccumulateFilterRows(g, x, dy, c * rows / num_chunks,
                           (c + 1) * rows / num_chunks, partials[c].data());
    }
  });
  // partials[i] += partials[i + stride], stride doubling: a fixed reduction
  // tree regardless of how chunks were scheduled above.
  for (int64_t stride = 1; stride < num_chunks; stride *= 2) {
    for (int64_t i = 0; i + stride < num_chunks; i += 2 * stride) {
      T* a = partials[i].data();
      const T* b = partials[i + stride].data();
      for (int64_t k = 0; k < filter_size; ++k) a[k] += b[k];
    }
  }
  const T* root = partials[0].data();
  for (int64_t k = 0; k < filter_size; ++k) df[k] += root[k];
}

Status Conv2DKernel(KernelContext* ctx) {
  const Tensor& x = ctx->input(0);
  const Tensor& f = ctx->input(1);
  TFE_ASSIGN_OR_RETURN(auto strides,
                       ctx->GetAttr<std::vector<int64_t>>("strides"));
  TFE_ASSIGN_OR_RETURN(auto padding, ctx->GetAttr<std::string>("padding"));
  TFE_ASSIGN_OR_RETURN(ConvGeometry g,
                       MakeGeometry(x.shape(), f.shape(), strides, padding));
  Tensor out = ctx->AllocateOutput(
      0, x.dtype(), Shape({g.batch, g.out_h, g.out_w, g.out_c}));
  TFE_SWITCH_FLOAT(x.dtype(), T, {
    ConvForward<T>(ctx->eager_context(), g, x.data<T>(), f.data<T>(),
                   out.mutable_data<T>());
  });
  return Status::OK();
}

Status Conv2DBackpropInputKernel(KernelContext* ctx) {
  // inputs: filter, dy; attr input_shape.
  const Tensor& f = ctx->input(0);
  const Tensor& dy = ctx->input(1);
  TFE_ASSIGN_OR_RETURN(Shape input_shape, ctx->GetAttr<Shape>("input_shape"));
  TFE_ASSIGN_OR_RETURN(auto strides,
                       ctx->GetAttr<std::vector<int64_t>>("strides"));
  TFE_ASSIGN_OR_RETURN(auto padding, ctx->GetAttr<std::string>("padding"));
  TFE_ASSIGN_OR_RETURN(ConvGeometry g,
                       MakeGeometry(input_shape, f.shape(), strides, padding));
  if (dy.shape() != Shape({g.batch, g.out_h, g.out_w, g.out_c})) {
    return InvalidArgument("Conv2DBackpropInput dy shape mismatch");
  }
  Tensor dx = ctx->AllocateOutput(0, dy.dtype(), input_shape);
  TFE_SWITCH_FLOAT(dy.dtype(), T, {
    ConvBackpropInput<T>(ctx->eager_context(), g, f.data<T>(), dy.data<T>(),
                         dx.mutable_data<T>());
  });
  return Status::OK();
}

Status Conv2DBackpropFilterKernel(KernelContext* ctx) {
  // inputs: x, dy; attr filter_shape.
  const Tensor& x = ctx->input(0);
  const Tensor& dy = ctx->input(1);
  TFE_ASSIGN_OR_RETURN(Shape filter_shape,
                       ctx->GetAttr<Shape>("filter_shape"));
  TFE_ASSIGN_OR_RETURN(auto strides,
                       ctx->GetAttr<std::vector<int64_t>>("strides"));
  TFE_ASSIGN_OR_RETURN(auto padding, ctx->GetAttr<std::string>("padding"));
  TFE_ASSIGN_OR_RETURN(ConvGeometry g,
                       MakeGeometry(x.shape(), filter_shape, strides, padding));
  if (dy.shape() != Shape({g.batch, g.out_h, g.out_w, g.out_c})) {
    return InvalidArgument("Conv2DBackpropFilter dy shape mismatch");
  }
  Tensor df = ctx->AllocateOutput(0, x.dtype(), filter_shape);
  TFE_SWITCH_FLOAT(x.dtype(), T, {
    ConvBackpropFilter<T>(ctx->eager_context(), g, x.data<T>(), dy.data<T>(),
                          df.mutable_data<T>());
  });
  return Status::OK();
}

}  // namespace

void RegisterConvKernels() {
  RegisterKernel("Conv2D", Conv2DKernel);
  RegisterKernel("Conv2DBackpropInput", Conv2DBackpropInputKernel);
  RegisterKernel("Conv2DBackpropFilter", Conv2DBackpropFilterKernel);
}

}  // namespace kernels
}  // namespace tfe
