// Shared helpers for CPU kernel implementations.
#ifndef TFE_KERNELS_KERNEL_UTIL_H_
#define TFE_KERNELS_KERNEL_UTIL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "ops/kernel.h"
#include "support/status.h"
#include "tensor/tensor.h"

// Dtype dispatch: expands STMTS once per supported element type with `T`
// bound. The *_NUMERIC form covers arithmetic types; *_FLOAT covers the
// floating types only (transcendental kernels).
#define TFE_SWITCH_NUMERIC(DTYPE, T, ...)                          \
  switch (DTYPE) {                                                 \
    case ::tfe::DType::kFloat32: {                                 \
      using T = float;                                             \
      __VA_ARGS__;                                                 \
      break;                                                       \
    }                                                              \
    case ::tfe::DType::kFloat64: {                                 \
      using T = double;                                            \
      __VA_ARGS__;                                                 \
      break;                                                       \
    }                                                              \
    case ::tfe::DType::kInt32: {                                   \
      using T = int32_t;                                           \
      __VA_ARGS__;                                                 \
      break;                                                       \
    }                                                              \
    case ::tfe::DType::kInt64: {                                   \
      using T = int64_t;                                           \
      __VA_ARGS__;                                                 \
      break;                                                       \
    }                                                              \
    default:                                                       \
      return ::tfe::InvalidArgument("Unsupported dtype for kernel"); \
  }

#define TFE_SWITCH_FLOAT(DTYPE, T, ...)                            \
  switch (DTYPE) {                                                 \
    case ::tfe::DType::kFloat32: {                                 \
      using T = float;                                             \
      __VA_ARGS__;                                                 \
      break;                                                       \
    }                                                              \
    case ::tfe::DType::kFloat64: {                                 \
      using T = double;                                            \
      __VA_ARGS__;                                                 \
      break;                                                       \
    }                                                              \
    default:                                                       \
      return ::tfe::InvalidArgument(                               \
          "Kernel requires a floating-point dtype");               \
  }

namespace tfe {
namespace kernels {

// Row-major strides of `shape`; broadcast dims (size 1 where the output is
// larger) get stride 0 when `broadcast_to` is provided.
std::vector<int64_t> ComputeStrides(const Shape& shape);

// Strides for reading `input` as if broadcast to `output` (trailing-dim
// alignment). Lengths equal output rank.
std::vector<int64_t> BroadcastStrides(const Shape& input, const Shape& output);

// Registers `fn` for `op_name` on all device kinds, CHECK-failing on
// duplicates (used by the startup registrars).
void RegisterKernel(const char* op_name, KernelFn fn);

// Shards [0, total) into contiguous ranges and runs `fn(begin, end)` on the
// context's intra-op thread pool, with the calling thread taking the first
// shard. Runs serially when the range is below `min_per_shard` (the grain —
// small tensors never pay a pool hop), when `ctx` is null, or when intra-op
// parallelism is disabled on the context. Blocks until every shard finishes.
//
// `fn` must write only to disjoint state per shard and must not call
// ParallelFor itself: shard bodies run as thread-pool leaves, and nesting
// would block a pool thread on the pool.
void ParallelFor(EagerContext* ctx, int64_t total, int64_t min_per_shard,
                 const std::function<void(int64_t, int64_t)>& fn);

// Publishes output `i` as an in-place view over `donor`'s buffer instead of
// allocating fresh storage (buffer donation), and updates the
// allocator.donations metrics. The caller must have proved the donor's
// buffer is exclusively owned and that the kernel's access pattern never
// reads the donor after writing the output (see the fused-run donation
// rules in fused_elementwise.cpp). Returns the published output tensor.
Tensor DonateOutput(KernelContext* ctx, int i, DType dtype, const Shape& shape,
                    const Tensor& donor);

}  // namespace kernels
}  // namespace tfe

#endif  // TFE_KERNELS_KERNEL_UTIL_H_
