#include "kernels/program_cache.h"

#include <cstdlib>
#include <utility>

#include "profiler/metrics.h"
#include "profiler/profiler.h"
#include "staging/signature.h"
#include "support/strings.h"

namespace tfe {
namespace kernels {

namespace {

bool CacheEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("TFE_FUSION_CACHE");
    if (env == nullptr) return true;
    const std::string v(env);
    return !(v == "off" || v == "0" || v == "false");
  }();
  return enabled;
}

}  // namespace

FusedProgramCache::FusedProgramCache(size_t capacity) : capacity_(capacity) {}

FusedProgramCache& FusedProgramCache::Global() {
  static FusedProgramCache* cache = new FusedProgramCache();
  return *cache;
}

std::string FusedProgramCache::Key(const std::vector<FusedRunOp>& ops,
                                   const std::vector<FusedRunOperand>& operands,
                                   DType run_dtype) {
  std::string key = strings::StrCat("rt:", DTypeName(run_dtype), "|");
  for (const FusedRunOp& op : ops) {
    key += strings::StrCat(op.op, ":", TypeShapeKey(op.dtype, op.shape));
    for (const FusedRunArg& arg : op.args) {
      key += arg.producer >= 0 ? strings::StrCat(",p", arg.producer)
                               : strings::StrCat(",o", arg.operand);
    }
    for (int64_t p : op.perm) key += strings::StrCat(",t", p);
    for (int64_t a : op.axes) key += strings::StrCat(",x", a);
    if (op.materialize) key += ",m";
    key += ";";
  }
  key += "|";
  for (const FusedRunOperand& od : operands) {
    key += strings::StrCat(TypeShapeKey(od.dtype, od.shape),
                           od.may_donate ? "+" : "-", ";");
  }
  return key;
}

StatusOr<CompiledRun> FusedProgramCache::GetOrCompile(
    const std::vector<FusedRunOp>& ops,
    const std::vector<FusedRunOperand>& operands, DType run_dtype) {
  if (!CacheEnabled()) return CompileFusedRun(ops, operands, run_dtype);

  static profiler::Counter* hit_counter =
      profiler::Metrics().GetCounter("fusion.program_cache.hit");
  static profiler::Counter* miss_counter =
      profiler::Metrics().GetCounter("fusion.program_cache.miss");
  static profiler::Counter* evict_counter =
      profiler::Metrics().GetCounter("fusion.program_cache.evict");
  static const uint32_t hit_name_id = profiler::Intern("program_cache_hit");

  std::string key = Key(ops, operands, run_dtype);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++hits_;
      hit_counter->Increment();
      profiler::RecordInstant(profiler::EventKind::kFusionRun, hit_name_id,
                              static_cast<int64_t>(ops.size()));
      return it->second->result;
    }
    ++misses_;
    miss_counter->Increment();
  }

  // Compile outside the lock: trial compilation walks the whole segment and
  // must not serialize concurrent drains. Two threads may race to compile
  // the same key; the second insert finds the entry present and drops its
  // duplicate, which is correct (compilation is deterministic).
  StatusOr<CompiledRun> result = CompileFusedRun(ops, operands, run_dtype);

  std::lock_guard<std::mutex> lock(mu_);
  if (index_.find(key) == index_.end()) {
    lru_.push_front(Entry{key, result});
    index_.emplace(lru_.front().key, lru_.begin());
    while (lru_.size() > capacity_) {
      index_.erase(lru_.back().key);
      lru_.pop_back();
      ++evictions_;
      evict_counter->Increment();
    }
  }
  return result;
}

void FusedProgramCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

void FusedProgramCache::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

size_t FusedProgramCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

uint64_t FusedProgramCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

uint64_t FusedProgramCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

uint64_t FusedProgramCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace kernels
}  // namespace tfe
