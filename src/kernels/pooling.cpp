// Max/avg pooling kernels (NHWC) and their backprops.
#include <algorithm>
#include <limits>

#include "kernels/kernel_util.h"

namespace tfe {
namespace kernels {
namespace {

struct PoolGeometry {
  int64_t batch, in_h, in_w, channels;
  int64_t k_h, k_w, stride_h, stride_w;
  int64_t out_h, out_w;
  int64_t pad_top, pad_left;
};

StatusOr<PoolGeometry> MakeGeometry(KernelContext* ctx, const Shape& input) {
  TFE_ASSIGN_OR_RETURN(auto ksize, ctx->GetAttr<std::vector<int64_t>>("ksize"));
  TFE_ASSIGN_OR_RETURN(auto strides,
                       ctx->GetAttr<std::vector<int64_t>>("strides"));
  TFE_ASSIGN_OR_RETURN(auto padding, ctx->GetAttr<std::string>("padding"));
  if (input.rank() != 4 || ksize.size() != 2 || strides.size() != 2) {
    return InvalidArgument("Pooling expects NHWC input, 2-element ksize/strides");
  }
  PoolGeometry g;
  g.batch = input.dim(0);
  g.in_h = input.dim(1);
  g.in_w = input.dim(2);
  g.channels = input.dim(3);
  g.k_h = ksize[0];
  g.k_w = ksize[1];
  g.stride_h = strides[0];
  g.stride_w = strides[1];
  if (padding == "SAME") {
    g.out_h = (g.in_h + g.stride_h - 1) / g.stride_h;
    g.out_w = (g.in_w + g.stride_w - 1) / g.stride_w;
    int64_t pad_h =
        std::max<int64_t>((g.out_h - 1) * g.stride_h + g.k_h - g.in_h, 0);
    int64_t pad_w =
        std::max<int64_t>((g.out_w - 1) * g.stride_w + g.k_w - g.in_w, 0);
    g.pad_top = pad_h / 2;
    g.pad_left = pad_w / 2;
  } else if (padding == "VALID") {
    if (g.k_h > g.in_h || g.k_w > g.in_w) {
      return InvalidArgument("Pooling VALID window larger than input");
    }
    g.out_h = (g.in_h - g.k_h) / g.stride_h + 1;
    g.out_w = (g.in_w - g.k_w) / g.stride_w + 1;
    g.pad_top = 0;
    g.pad_left = 0;
  } else {
    return InvalidArgument("Unknown padding: " + padding);
  }
  return g;
}

// Below this many window-element visits per shard the loops stay serial.
constexpr int64_t kPoolShardWork = 1 << 18;

// Iterates all windows, sharded over (n, oh) output rows. Only valid when
// `fn`'s writes are disjoint per output row (the forward kernels).
template <typename PerWindowFn>
void ForEachWindowByRow(EagerContext* ectx, const PoolGeometry& g,
                        PerWindowFn fn) {
  const int64_t rows = g.batch * g.out_h;
  const int64_t row_work = g.out_w * g.channels * g.k_h * g.k_w;
  const int64_t min_rows =
      std::max<int64_t>(1, kPoolShardWork / std::max<int64_t>(row_work, 1));
  ParallelFor(ectx, rows, min_rows, [&](int64_t begin, int64_t end) {
    for (int64_t row = begin; row < end; ++row) {
      const int64_t n = row / g.out_h;
      const int64_t oh = row % g.out_h;
      for (int64_t ow = 0; ow < g.out_w; ++ow) {
        for (int64_t c = 0; c < g.channels; ++c) {
          fn(n, oh, ow, c);
        }
      }
    }
  });
}

// Iterates all windows, sharded per batch image: the grad kernels scatter
// into overlapping input rows, so only the batch dimension is write-disjoint.
template <typename PerWindowFn>
void ForEachWindowByImage(EagerContext* ectx, const PoolGeometry& g,
                          PerWindowFn fn) {
  const int64_t image_work = g.out_h * g.out_w * g.channels * g.k_h * g.k_w;
  const int64_t min_images =
      std::max<int64_t>(1, kPoolShardWork / std::max<int64_t>(image_work, 1));
  ParallelFor(ectx, g.batch, min_images, [&](int64_t begin, int64_t end) {
    for (int64_t n = begin; n < end; ++n) {
      for (int64_t oh = 0; oh < g.out_h; ++oh) {
        for (int64_t ow = 0; ow < g.out_w; ++ow) {
          for (int64_t c = 0; c < g.channels; ++c) {
            fn(n, oh, ow, c);
          }
        }
      }
    }
  });
}

template <typename T>
int64_t InputOffset(const PoolGeometry& g, int64_t n, int64_t ih, int64_t iw,
                    int64_t c) {
  return ((n * g.in_h + ih) * g.in_w + iw) * g.channels + c;
}

template <typename T>
int64_t OutputOffset(const PoolGeometry& g, int64_t n, int64_t oh, int64_t ow,
                     int64_t c) {
  return ((n * g.out_h + oh) * g.out_w + ow) * g.channels + c;
}

Status MaxPoolKernel(KernelContext* ctx) {
  const Tensor& x = ctx->input(0);
  TFE_ASSIGN_OR_RETURN(PoolGeometry g, MakeGeometry(ctx, x.shape()));
  Tensor out = ctx->AllocateOutput(
      0, x.dtype(), Shape({g.batch, g.out_h, g.out_w, g.channels}));
  TFE_SWITCH_FLOAT(x.dtype(), T, {
    const T* in = x.data<T>();
    T* result = out.mutable_data<T>();
    ForEachWindowByRow(ctx->eager_context(), g, [&](int64_t n, int64_t oh, int64_t ow, int64_t c) {
      T best = -std::numeric_limits<T>::infinity();
      for (int64_t kh = 0; kh < g.k_h; ++kh) {
        int64_t ih = oh * g.stride_h + kh - g.pad_top;
        if (ih < 0 || ih >= g.in_h) continue;
        for (int64_t kw = 0; kw < g.k_w; ++kw) {
          int64_t iw = ow * g.stride_w + kw - g.pad_left;
          if (iw < 0 || iw >= g.in_w) continue;
          best = std::max(best, in[InputOffset<T>(g, n, ih, iw, c)]);
        }
      }
      result[OutputOffset<T>(g, n, oh, ow, c)] = best;
    });
  });
  return Status::OK();
}

// inputs: x, y (forward output), dy.
Status MaxPoolGradKernel(KernelContext* ctx) {
  const Tensor& x = ctx->input(0);
  const Tensor& y = ctx->input(1);
  const Tensor& dy = ctx->input(2);
  TFE_ASSIGN_OR_RETURN(PoolGeometry g, MakeGeometry(ctx, x.shape()));
  Tensor dx = ctx->AllocateOutput(0, x.dtype(), x.shape());
  TFE_SWITCH_FLOAT(x.dtype(), T, {
    const T* in = x.data<T>();
    const T* out = y.data<T>();
    const T* grad = dy.data<T>();
    T* din = dx.mutable_data<T>();
    ForEachWindowByImage(ctx->eager_context(), g, [&](int64_t n, int64_t oh, int64_t ow, int64_t c) {
      int64_t out_off = OutputOffset<T>(g, n, oh, ow, c);
      T max_value = out[out_off];
      // Route the gradient to the first element achieving the max,
      // matching TF's tie-breaking.
      for (int64_t kh = 0; kh < g.k_h; ++kh) {
        int64_t ih = oh * g.stride_h + kh - g.pad_top;
        if (ih < 0 || ih >= g.in_h) continue;
        for (int64_t kw = 0; kw < g.k_w; ++kw) {
          int64_t iw = ow * g.stride_w + kw - g.pad_left;
          if (iw < 0 || iw >= g.in_w) continue;
          int64_t in_off = InputOffset<T>(g, n, ih, iw, c);
          if (in[in_off] == max_value) {
            din[in_off] += grad[out_off];
            return;
          }
        }
      }
    });
  });
  return Status::OK();
}

Status AvgPoolKernel(KernelContext* ctx) {
  const Tensor& x = ctx->input(0);
  TFE_ASSIGN_OR_RETURN(PoolGeometry g, MakeGeometry(ctx, x.shape()));
  Tensor out = ctx->AllocateOutput(
      0, x.dtype(), Shape({g.batch, g.out_h, g.out_w, g.channels}));
  TFE_SWITCH_FLOAT(x.dtype(), T, {
    const T* in = x.data<T>();
    T* result = out.mutable_data<T>();
    ForEachWindowByRow(ctx->eager_context(), g, [&](int64_t n, int64_t oh, int64_t ow, int64_t c) {
      T sum = T(0);
      int64_t count = 0;
      for (int64_t kh = 0; kh < g.k_h; ++kh) {
        int64_t ih = oh * g.stride_h + kh - g.pad_top;
        if (ih < 0 || ih >= g.in_h) continue;
        for (int64_t kw = 0; kw < g.k_w; ++kw) {
          int64_t iw = ow * g.stride_w + kw - g.pad_left;
          if (iw < 0 || iw >= g.in_w) continue;
          sum += in[InputOffset<T>(g, n, ih, iw, c)];
          ++count;
        }
      }
      result[OutputOffset<T>(g, n, oh, ow, c)] =
          count > 0 ? sum / static_cast<T>(count) : T(0);
    });
  });
  return Status::OK();
}

// input: dy; attr input_shape.
Status AvgPoolGradKernel(KernelContext* ctx) {
  const Tensor& dy = ctx->input(0);
  TFE_ASSIGN_OR_RETURN(Shape input_shape, ctx->GetAttr<Shape>("input_shape"));
  TFE_ASSIGN_OR_RETURN(PoolGeometry g, MakeGeometry(ctx, input_shape));
  Tensor dx = ctx->AllocateOutput(0, dy.dtype(), input_shape);
  TFE_SWITCH_FLOAT(dy.dtype(), T, {
    const T* grad = dy.data<T>();
    T* din = dx.mutable_data<T>();
    ForEachWindowByImage(ctx->eager_context(), g, [&](int64_t n, int64_t oh, int64_t ow, int64_t c) {
      int64_t count = 0;
      for (int64_t kh = 0; kh < g.k_h; ++kh) {
        int64_t ih = oh * g.stride_h + kh - g.pad_top;
        if (ih < 0 || ih >= g.in_h) continue;
        for (int64_t kw = 0; kw < g.k_w; ++kw) {
          int64_t iw = ow * g.stride_w + kw - g.pad_left;
          if (iw < 0 || iw >= g.in_w) continue;
          ++count;
        }
      }
      if (count == 0) return;
      T share = grad[OutputOffset<T>(g, n, oh, ow, c)] / static_cast<T>(count);
      for (int64_t kh = 0; kh < g.k_h; ++kh) {
        int64_t ih = oh * g.stride_h + kh - g.pad_top;
        if (ih < 0 || ih >= g.in_h) continue;
        for (int64_t kw = 0; kw < g.k_w; ++kw) {
          int64_t iw = ow * g.stride_w + kw - g.pad_left;
          if (iw < 0 || iw >= g.in_w) continue;
          din[InputOffset<T>(g, n, ih, iw, c)] += share;
        }
      }
    });
  });
  return Status::OK();
}

}  // namespace

void RegisterPoolingKernels() {
  RegisterKernel("MaxPool", MaxPoolKernel);
  RegisterKernel("MaxPoolGrad", MaxPoolGradKernel);
  RegisterKernel("AvgPool", AvgPoolKernel);
  RegisterKernel("AvgPoolGrad", AvgPoolGradKernel);
}

}  // namespace kernels
}  // namespace tfe
