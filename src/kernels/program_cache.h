// The compiled-program cache behind fused DAG execution (LazyTensor's
// "compiler cache keyed on trace hash", arXiv 2102.13267, applied to our
// MicroProgram compiler).
//
// Both fusion frontends recognize the same DAG segment on every training
// step; only its shapes and dtypes matter to CompileFusedRun, so the cache
// key is the segment's shape/dtype signature — built from the same
// TypeShapeKey atom the trace cache uses (staging/signature.h) plus the
// run's wiring (op names, producer/operand argument references, layout
// perms, reduction axes, materialization and donation bits). Steady-state
// steps fetch the compiled artifact instead of re-running trial compilation.
//
// Failed compilations are cached too: a segment the compiler rejects is
// rejected identically every step, and the drain must learn that without
// paying the compile walk each time.
//
// Eviction is LRU with a fixed entry cap. Counters
// fusion.program_cache.{hit,miss,evict} and a program_cache_hit trace
// instant surface behavior through the profiler registry.
// TFE_FUSION_CACHE=off disables lookups (every call compiles).
#ifndef TFE_KERNELS_PROGRAM_CACHE_H_
#define TFE_KERNELS_PROGRAM_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "kernels/fused_elementwise.h"
#include "support/status.h"

namespace tfe {
namespace kernels {

class FusedProgramCache {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  explicit FusedProgramCache(size_t capacity = kDefaultCapacity);

  // The process-wide cache both fusion frontends share.
  static FusedProgramCache& Global();

  // Cache key for a candidate run: every field CompileFusedRun's output
  // depends on, nothing else (tensor *contents* never matter).
  static std::string Key(const std::vector<FusedRunOp>& ops,
                         const std::vector<FusedRunOperand>& operands,
                         DType run_dtype);

  // Returns the cached compile result for this segment signature, compiling
  // (outside the cache lock) and inserting on a miss. With the cache
  // disabled (TFE_FUSION_CACHE=off) every call compiles and the counters
  // stay untouched.
  StatusOr<CompiledRun> GetOrCompile(const std::vector<FusedRunOp>& ops,
                                     const std::vector<FusedRunOperand>& operands,
                                     DType run_dtype);

  void Clear();
  void set_capacity(size_t capacity);
  size_t size() const;

  // Per-instance totals (the profiler counters aggregate the global
  // instance; tests use these on private instances).
  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t evictions() const;

 private:
  struct Entry {
    std::string key;
    StatusOr<CompiledRun> result;
  };

  mutable std::mutex mu_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace kernels
}  // namespace tfe

#endif  // TFE_KERNELS_PROGRAM_CACHE_H_
