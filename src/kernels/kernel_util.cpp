#include "kernels/kernel_util.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>

#include "profiler/profiler.h"
#include "runtime/eager_context.h"
#include "support/threadpool.h"

namespace tfe {
namespace kernels {

Tensor DonateOutput(KernelContext* ctx, int i, DType dtype, const Shape& shape,
                    const Tensor& donor) {
  // A plan-slab view must never become a donation target: its bytes belong
  // to the plan's block-reuse schedule, and publishing them as an output
  // would let them outlive the planned lifetime. Allocate fresh instead —
  // the kernel writes through the returned handle either way.
  if (donor.buffer() != nullptr && donor.buffer()->is_view()) {
    return ctx->AllocateOutput(i, dtype, shape);
  }
  Tensor out = Tensor::Concrete(dtype, shape, donor.buffer(), ctx->device());
  ctx->SetOutput(i, out);
  static profiler::Counter* donations =
      profiler::Metrics().GetCounter("allocator.donations");
  static profiler::Counter* donated_bytes =
      profiler::Metrics().GetCounter("allocator.donated_bytes");
  const int64_t bytes =
      shape.num_elements() * static_cast<int64_t>(DTypeSize(dtype));
  donations->Increment();
  donated_bytes->Increment(static_cast<uint64_t>(bytes));
  if (profiler::enabled()) {
    static const uint32_t donation_name = profiler::Intern("buffer_donation");
    profiler::RecordInstant(profiler::EventKind::kAllocator, donation_name,
                            bytes);
  }
  return out;
}

void ParallelFor(EagerContext* ctx, int64_t total, int64_t min_per_shard,
                 const std::function<void(int64_t, int64_t)>& fn) {
  if (total <= 0) return;
  min_per_shard = std::max<int64_t>(min_per_shard, 1);
  ThreadPool* pool = ctx != nullptr && ctx->intra_op_parallelism()
                         ? &ctx->intraop_pool()
                         : nullptr;
  const int64_t max_shards = pool != nullptr ? pool->num_threads() : 1;
  const int64_t shards =
      std::min<int64_t>(max_shards, total / min_per_shard);
  if (shards <= 1) {
    fn(0, total);
    return;
  }

  const int64_t block = (total + shards - 1) / shards;
  std::mutex mu;
  std::condition_variable done_cv;
  int64_t remaining = shards - 1;
  for (int64_t s = 1; s < shards; ++s) {
    const int64_t begin = s * block;
    const int64_t end = std::min(total, begin + block);
    pool->Schedule([&, begin, end] {
      if (begin < end) fn(begin, end);
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) done_cv.notify_one();
    });
  }
  // The caller owns the first shard; sharing the work keeps the pool sized
  // for (threads - 1) helpers and guarantees progress even on a full pool.
  fn(0, std::min(total, block));
  std::unique_lock<std::mutex> lock(mu);
  done_cv.wait(lock, [&] { return remaining == 0; });
}

}  // namespace kernels
}  // namespace tfe
