// Elementwise kernels: broadcasting binary arithmetic, comparisons, unary
// math, Select, Cast, ZerosLike/OnesLike.
#include <cmath>
#include <cstring>

#include "kernels/elementwise_functors.h"
#include "kernels/kernel_util.h"
#include "support/logging.h"
#include "tensor/tensor_util.h"

namespace tfe {
namespace kernels {

std::vector<int64_t> ComputeStrides(const Shape& shape) {
  std::vector<int64_t> strides(shape.rank());
  int64_t stride = 1;
  for (int i = shape.rank() - 1; i >= 0; --i) {
    strides[i] = stride;
    stride *= shape.dims()[i];
  }
  return strides;
}

std::vector<int64_t> BroadcastStrides(const Shape& input,
                                      const Shape& output) {
  std::vector<int64_t> in_strides = ComputeStrides(input);
  std::vector<int64_t> strides(output.rank(), 0);
  for (int i = 0; i < input.rank(); ++i) {
    int out_dim = output.rank() - input.rank() + i;
    strides[out_dim] = input.dims()[i] == 1 && output.dims()[out_dim] != 1
                           ? 0
                           : in_strides[i];
  }
  return strides;
}

void RegisterKernel(const char* op_name, KernelFn fn) {
  Status status = KernelRegistry::Global()->Register(op_name, std::move(fn));
  TFE_CHECK(status.ok()) << status.ToString();
}

namespace {

// Below this many output elements the sharding overhead dominates and the
// loops stay serial (ParallelFor's min_per_shard).
constexpr int64_t kElementwiseGrain = 16 * 1024;

// Iterates the output index space, mapping each output coordinate to
// (possibly broadcast) input offsets. Shards across the intra-op pool; each
// shard writes a disjoint [begin, end) slice of `out`, so values are bitwise
// identical to the serial loop.
template <typename TIn, typename TOut, typename BinaryFn>
void BroadcastBinaryLoop(EagerContext* ectx, const TIn* a,
                         const std::vector<int64_t>& a_strides, const TIn* b,
                         const std::vector<int64_t>& b_strides, TOut* out,
                         const Shape& out_shape, BinaryFn fn) {
  const int rank = out_shape.rank();
  const int64_t count = out_shape.num_elements();
  if (rank == 0) {
    if (count == 1) out[0] = fn(a[0], b[0]);
    return;
  }
  ParallelFor(ectx, count, kElementwiseGrain, [&](int64_t begin, int64_t end) {
    // Seed the odometer at linear index `begin`.
    std::vector<int64_t> coord(rank, 0);
    int64_t a_off = 0;
    int64_t b_off = 0;
    int64_t rem = begin;
    for (int d = rank - 1; d >= 0; --d) {
      coord[d] = rem % out_shape.dims()[d];
      rem /= out_shape.dims()[d];
      a_off += coord[d] * a_strides[d];
      b_off += coord[d] * b_strides[d];
    }
    for (int64_t i = begin; i < end; ++i) {
      out[i] = fn(a[a_off], b[b_off]);
      // Odometer increment with running offsets.
      for (int d = rank - 1; d >= 0; --d) {
        a_off += a_strides[d];
        b_off += b_strides[d];
        if (++coord[d] < out_shape.dims()[d]) break;
        coord[d] = 0;
        a_off -= a_strides[d] * out_shape.dims()[d];
        b_off -= b_strides[d] * out_shape.dims()[d];
      }
    }
  });
}

// Output buffer for a binary elementwise kernel: in place over the operand
// the drain proved exclusively owned (op-at-a-time donation; "donate" attr
// holds the donor's input index). Only an exact-shape donor qualifies — a
// broadcasting operand's buffer is smaller than the output, and an
// exact-shape donor's element i is read immediately before element i is
// written, so aliasing is safe (the non-donor operand cannot share the
// donor's buffer: a shared buffer fails the drain's use-count proof).
// Structurally re-validated here: kernels are publicly invocable with
// arbitrary attrs.
Tensor BinaryOutput(KernelContext* ctx, const Tensor& a, const Tensor& b,
                    DType out_dtype, const Shape& out_shape) {
  const int64_t donor_index = ctx->GetAttrOr<int64_t>("donate", -1);
  if (donor_index == 0 || donor_index == 1) {
    const Tensor& donor = donor_index == 0 ? a : b;
    if (donor.defined() && !donor.is_opaque() && !donor.is_resource() &&
        donor.dtype() == out_dtype && donor.shape() == out_shape) {
      return DonateOutput(ctx, 0, out_dtype, out_shape, donor);
    }
  }
  return ctx->AllocateOutput(0, out_dtype, out_shape);
}

// F exposes `template <typename T> static T Apply(T, T)`.
template <typename F>
Status BinaryKernel(KernelContext* ctx) {
  const Tensor& a = ctx->input(0);
  const Tensor& b = ctx->input(1);
  if (a.dtype() != b.dtype()) {
    return InvalidArgument("Binary op dtype mismatch: " +
                           std::string(DTypeName(a.dtype())) + " vs " +
                           DTypeName(b.dtype()));
  }
  TFE_ASSIGN_OR_RETURN(Shape out_shape, BroadcastShapes(a.shape(), b.shape()));
  Tensor out = BinaryOutput(ctx, a, b, a.dtype(), out_shape);
  auto a_strides = BroadcastStrides(a.shape(), out_shape);
  auto b_strides = BroadcastStrides(b.shape(), out_shape);
  TFE_SWITCH_NUMERIC(a.dtype(), T, {
    BroadcastBinaryLoop<T, T>(ctx->eager_context(), a.data<T>(), a_strides,
                              b.data<T>(), b_strides, out.mutable_data<T>(),
                              out_shape,
                              [](T x, T y) { return F::template Apply<T>(x, y); });
  });
  return Status::OK();
}

// Float-only binary (Pow).
template <typename F>
Status BinaryFloatKernel(KernelContext* ctx) {
  const Tensor& a = ctx->input(0);
  const Tensor& b = ctx->input(1);
  if (a.dtype() != b.dtype()) {
    return InvalidArgument("Binary op dtype mismatch");
  }
  TFE_ASSIGN_OR_RETURN(Shape out_shape, BroadcastShapes(a.shape(), b.shape()));
  Tensor out = BinaryOutput(ctx, a, b, a.dtype(), out_shape);
  auto a_strides = BroadcastStrides(a.shape(), out_shape);
  auto b_strides = BroadcastStrides(b.shape(), out_shape);
  TFE_SWITCH_FLOAT(a.dtype(), T, {
    BroadcastBinaryLoop<T, T>(ctx->eager_context(), a.data<T>(), a_strides,
                              b.data<T>(), b_strides, out.mutable_data<T>(),
                              out_shape,
                              [](T x, T y) { return F::template Apply<T>(x, y); });
  });
  return Status::OK();
}

template <typename F>
Status CompareKernel(KernelContext* ctx) {
  const Tensor& a = ctx->input(0);
  const Tensor& b = ctx->input(1);
  if (a.dtype() != b.dtype()) {
    return InvalidArgument("Comparison dtype mismatch");
  }
  TFE_ASSIGN_OR_RETURN(Shape out_shape, BroadcastShapes(a.shape(), b.shape()));
  Tensor out = ctx->AllocateOutput(0, DType::kBool, out_shape);
  auto a_strides = BroadcastStrides(a.shape(), out_shape);
  auto b_strides = BroadcastStrides(b.shape(), out_shape);
  TFE_SWITCH_NUMERIC(a.dtype(), T, {
    BroadcastBinaryLoop<T, bool>(
        ctx->eager_context(), a.data<T>(), a_strides, b.data<T>(), b_strides,
        out.mutable_data<bool>(), out_shape,
        [](T x, T y) { return F::template Apply<T>(x, y); });
  });
  return Status::OK();
}

// Output buffer for a unary elementwise kernel: in place over the input
// when the drain proved the input buffer exclusively owned and set the
// "donate" attr (op-at-a-time donation, mirroring FusedElementwise's). The
// per-element loops read element i immediately before writing element i, so
// aliasing input and output is exact. Structurally re-validated here: the
// kernel is publicly invocable with arbitrary attrs.
Tensor UnaryOutput(KernelContext* ctx, const Tensor& x) {
  if (ctx->GetAttrOr<int64_t>("donate", -1) == 0 && x.defined() &&
      !x.is_opaque() && !x.is_resource()) {
    return DonateOutput(ctx, 0, x.dtype(), x.shape(), x);
  }
  return ctx->AllocateOutput(0, x.dtype(), x.shape());
}

// F exposes `template <typename T> static T Apply(T)`.
template <typename F>
Status UnaryKernel(KernelContext* ctx) {
  const Tensor& x = ctx->input(0);
  Tensor out = UnaryOutput(ctx, x);
  TFE_SWITCH_NUMERIC(x.dtype(), T, {
    const T* in = x.data<T>();
    T* result = out.mutable_data<T>();
    ParallelFor(ctx->eager_context(), x.num_elements(), kElementwiseGrain,
                [&](int64_t begin, int64_t end) {
                  for (int64_t i = begin; i < end; ++i) {
                    result[i] = F::template Apply<T>(in[i]);
                  }
                });
  });
  return Status::OK();
}

template <typename F>
Status UnaryFloatKernel(KernelContext* ctx) {
  const Tensor& x = ctx->input(0);
  Tensor out = UnaryOutput(ctx, x);
  TFE_SWITCH_FLOAT(x.dtype(), T, {
    const T* in = x.data<T>();
    T* result = out.mutable_data<T>();
    ParallelFor(ctx->eager_context(), x.num_elements(), kElementwiseGrain,
                [&](int64_t begin, int64_t end) {
                  for (int64_t i = begin; i < end; ++i) {
                    result[i] = F::template Apply<T>(in[i]);
                  }
                });
  });
  return Status::OK();
}

// The scalar functors live in kernels/elementwise_functors.h, shared with the
// FusedElementwise interpreter so fused and unfused execution agree bitwise.

Status SelectKernel(KernelContext* ctx) {
  const Tensor& cond = ctx->input(0);
  const Tensor& x = ctx->input(1);
  const Tensor& y = ctx->input(2);
  if (cond.dtype() != DType::kBool) {
    return InvalidArgument("Select condition must be bool");
  }
  if (x.shape() != y.shape() || x.shape() != cond.shape()) {
    return InvalidArgument("Select requires equal shapes");
  }
  Tensor out = ctx->AllocateOutput(0, x.dtype(), x.shape());
  const bool* c = cond.data<bool>();
  TFE_SWITCH_NUMERIC(x.dtype(), T, {
    const T* xs = x.data<T>();
    const T* ys = y.data<T>();
    T* result = out.mutable_data<T>();
    ParallelFor(ctx->eager_context(), x.num_elements(), kElementwiseGrain,
                [&](int64_t begin, int64_t end) {
                  for (int64_t i = begin; i < end; ++i) {
                    result[i] = c[i] ? xs[i] : ys[i];
                  }
                });
  });
  return Status::OK();
}

Status CastKernel(KernelContext* ctx) {
  const Tensor& x = ctx->input(0);
  TFE_ASSIGN_OR_RETURN(DType dst, ctx->GetAttr<DType>("dst"));
  Tensor out = ctx->AllocateOutput(0, dst, x.shape());
  const int64_t count = x.num_elements();
  if (x.dtype() == DType::kBool || dst == DType::kBool) {
    // Bool conversions go through the generic element accessors (bool masks
    // cast to float are common in accept/reject samplers like L2HMC).
    for (int64_t i = 0; i < count; ++i) {
      tensor_util::SetElementFromDouble(out, i,
                                        tensor_util::ElementAsDouble(x, i));
    }
    return Status::OK();
  }
  TFE_SWITCH_NUMERIC(x.dtype(), TIn, {
    const TIn* in = x.data<TIn>();
    TFE_SWITCH_NUMERIC(dst, TOut, {
      TOut* result = out.mutable_data<TOut>();
      ParallelFor(ctx->eager_context(), count, kElementwiseGrain,
                  [&](int64_t begin, int64_t end) {
                    for (int64_t i = begin; i < end; ++i) {
                      result[i] = static_cast<TOut>(in[i]);
                    }
                  });
    });
  });
  return Status::OK();
}

Status ZerosLikeKernel(KernelContext* ctx) {
  const Tensor& x = ctx->input(0);
  ctx->AllocateOutput(0, x.dtype(), x.shape());  // zero-initialized
  return Status::OK();
}

Status OnesLikeKernel(KernelContext* ctx) {
  const Tensor& x = ctx->input(0);
  Tensor out = ctx->AllocateOutput(0, x.dtype(), x.shape());
  TFE_SWITCH_NUMERIC(x.dtype(), T, {
    T* result = out.mutable_data<T>();
    for (int64_t i = 0; i < x.num_elements(); ++i) result[i] = T(1);
  });
  return Status::OK();
}

}  // namespace

void RegisterElementwiseKernels() {
  using namespace functors;  // NOLINT(build/namespaces)
  RegisterKernel("Add", BinaryKernel<AddF>);
  RegisterKernel("Sub", BinaryKernel<SubF>);
  RegisterKernel("Mul", BinaryKernel<MulF>);
  RegisterKernel("Div", BinaryKernel<DivF>);
  RegisterKernel("Maximum", BinaryKernel<MaximumF>);
  RegisterKernel("Minimum", BinaryKernel<MinimumF>);
  RegisterKernel("SquaredDifference", BinaryKernel<SquaredDifferenceF>);
  RegisterKernel("Pow", BinaryFloatKernel<PowF>);

  RegisterKernel("Equal", CompareKernel<EqualF>);
  RegisterKernel("NotEqual", CompareKernel<NotEqualF>);
  RegisterKernel("Less", CompareKernel<LessF>);
  RegisterKernel("LessEqual", CompareKernel<LessEqualF>);
  RegisterKernel("Greater", CompareKernel<GreaterF>);
  RegisterKernel("GreaterEqual", CompareKernel<GreaterEqualF>);

  RegisterKernel("Neg", UnaryKernel<NegF>);
  RegisterKernel("Abs", UnaryKernel<AbsF>);
  RegisterKernel("Square", UnaryKernel<SquareF>);
  RegisterKernel("Sign", UnaryKernel<SignF>);
  RegisterKernel("Relu", UnaryKernel<ReluF>);
  RegisterKernel("Exp", UnaryFloatKernel<ExpF>);
  RegisterKernel("Log", UnaryFloatKernel<LogF>);
  RegisterKernel("Sqrt", UnaryFloatKernel<SqrtF>);
  RegisterKernel("Rsqrt", UnaryFloatKernel<RsqrtF>);
  RegisterKernel("Tanh", UnaryFloatKernel<TanhF>);
  RegisterKernel("Sigmoid", UnaryFloatKernel<SigmoidF>);
  RegisterKernel("Sin", UnaryFloatKernel<SinF>);
  RegisterKernel("Cos", UnaryFloatKernel<CosF>);
  RegisterKernel("Reciprocal", UnaryFloatKernel<ReciprocalF>);
  RegisterKernel("Floor", UnaryFloatKernel<FloorF>);

  RegisterKernel("Select", SelectKernel);
  RegisterKernel("Cast", CastKernel);
  RegisterKernel("ZerosLike", ZerosLikeKernel);
  RegisterKernel("OnesLike", OnesLikeKernel);
}

}  // namespace kernels
}  // namespace tfe
