// Random kernels, built on counter-based Philox.
//
// With a nonzero `seed` attr the op is a pure function of (seed, seed2) —
// the same stream in eager and staged execution. With seed == 0 the op draws
// from the context's stateful stream: every *execution* yields fresh
// randomness, which is exactly why tracing a TF random op preserves
// semantics while tracing np.random.randn would freeze a constant into the
// graph (paper §4.1).
#include "kernels/kernel_util.h"
#include "runtime/eager_context.h"

namespace tfe {
namespace kernels {
namespace {

template <bool kNormal>
Status RandomKernel(KernelContext* ctx) {
  TFE_ASSIGN_OR_RETURN(Shape shape, ctx->GetAttr<Shape>("shape"));
  DType dtype = ctx->GetAttrOr<DType>("dtype", DType::kFloat32);
  int64_t seed = ctx->GetAttrOr<int64_t>("seed", 0);
  int64_t seed2 = ctx->GetAttrOr<int64_t>("seed2", 0);
  if (!IsFloating(dtype)) {
    return InvalidArgument("Random ops require a floating dtype");
  }
  Tensor out = ctx->AllocateOutput(0, dtype, shape);
  const int64_t count = shape.num_elements();

  auto fill = [&](random::Philox& gen) {
    TFE_SWITCH_FLOAT(dtype, T, {
      T* data = out.mutable_data<T>();
      if (kNormal) {
        double mean = ctx->GetAttrOr<double>("mean", 0.0);
        double stddev = ctx->GetAttrOr<double>("stddev", 1.0);
        for (int64_t i = 0; i < count; ++i) {
          data[i] = static_cast<T>(mean + stddev * gen.NextGaussian());
        }
      } else {
        double minval = ctx->GetAttrOr<double>("minval", 0.0);
        double maxval = ctx->GetAttrOr<double>("maxval", 1.0);
        for (int64_t i = 0; i < count; ++i) {
          data[i] = static_cast<T>(minval +
                                   (maxval - minval) * gen.NextDouble());
        }
      }
    });
    return Status::OK();
  };

  if (seed != 0 || seed2 != 0) {
    random::Philox gen(static_cast<uint64_t>(seed),
                       static_cast<uint64_t>(seed2));
    return fill(gen);
  }
  EagerContext* ectx = ctx->eager_context();
  // Seed-0 ops draw from the Philox stream reserved for this op at dispatch
  // / graph-node level: fresh randomness per execution, but *deterministic*
  // regardless of how kernel executions interleave across threads (the
  // shared stateful generator below hands out values in execution order,
  // which the parallel executor does not fix).
  if (const uint64_t stream = ctx->rng_stream(); stream != 0) {
    random::Philox gen(ectx->random_seed(), stream);
    return fill(gen);
  }
  std::lock_guard<std::mutex> lock(ectx->rng_mu());
  return fill(ectx->rng());
}

}  // namespace

void RegisterRandomKernels() {
  RegisterKernel("RandomNormal", RandomKernel<true>);
  RegisterKernel("RandomUniform", RandomKernel<false>);
}

}  // namespace kernels
}  // namespace tfe
