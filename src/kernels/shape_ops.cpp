// Data-movement kernels: Reshape, Transpose, Concat, Slice, Pad, Tile,
// ExpandDims, Squeeze, Gather.
#include <cmath>
#include <cstring>

#include "kernels/kernel_util.h"

namespace tfe {
namespace kernels {
namespace {

// Reshape/ExpandDims/Squeeze share the input buffer — pure metadata ops.
Status ReinterpretShape(KernelContext* ctx, Shape out_shape) {
  const Tensor& x = ctx->input(0);
  if (out_shape.num_elements() != x.num_elements()) {
    return InvalidArgument("Reshape element count mismatch: " +
                           x.shape().ToString() + " -> " +
                           out_shape.ToString());
  }
  ctx->SetOutput(0, Tensor::Concrete(x.dtype(), std::move(out_shape),
                                     x.buffer(), ctx->device()));
  return Status::OK();
}

Status ReshapeKernel(KernelContext* ctx) {
  const Tensor& x = ctx->input(0);
  TFE_ASSIGN_OR_RETURN(auto target,
                       ctx->GetAttr<std::vector<int64_t>>("shape"));
  int64_t known = 1;
  int infer_index = -1;
  for (size_t i = 0; i < target.size(); ++i) {
    if (target[i] == -1) {
      if (infer_index >= 0) {
        return InvalidArgument("Reshape allows at most one -1 dimension");
      }
      infer_index = static_cast<int>(i);
    } else {
      known *= target[i];
    }
  }
  if (infer_index >= 0) {
    if (known == 0 || x.num_elements() % known != 0) {
      return InvalidArgument("Cannot infer -1 dimension in Reshape");
    }
    target[infer_index] = x.num_elements() / known;
  }
  return ReinterpretShape(ctx, Shape(std::move(target)));
}

Status ExpandDimsKernel(KernelContext* ctx) {
  const Tensor& x = ctx->input(0);
  TFE_ASSIGN_OR_RETURN(int64_t axis, ctx->GetAttr<int64_t>("axis"));
  if (axis < 0) axis += x.shape().rank() + 1;
  if (axis < 0 || axis > x.shape().rank()) {
    return InvalidArgument("ExpandDims axis out of range");
  }
  std::vector<int64_t> dims = x.shape().dims();
  dims.insert(dims.begin() + axis, 1);
  return ReinterpretShape(ctx, Shape(std::move(dims)));
}

Status SqueezeKernel(KernelContext* ctx) {
  const Tensor& x = ctx->input(0);
  std::vector<int64_t> axes = ctx->GetAttrOr<std::vector<int64_t>>("axis", {});
  std::vector<bool> drop(x.shape().rank(), false);
  if (axes.empty()) {
    for (int i = 0; i < x.shape().rank(); ++i) {
      drop[i] = x.shape().dims()[i] == 1;
    }
  } else {
    for (int64_t axis : axes) {
      if (axis < 0) axis += x.shape().rank();
      if (axis < 0 || axis >= x.shape().rank() || x.shape().dims()[axis] != 1) {
        return InvalidArgument("Squeeze axis invalid");
      }
      drop[axis] = true;
    }
  }
  std::vector<int64_t> dims;
  for (int i = 0; i < x.shape().rank(); ++i) {
    if (!drop[i]) dims.push_back(x.shape().dims()[i]);
  }
  return ReinterpretShape(ctx, Shape(std::move(dims)));
}

Status TransposeKernel(KernelContext* ctx) {
  const Tensor& x = ctx->input(0);
  TFE_ASSIGN_OR_RETURN(auto perm, ctx->GetAttr<std::vector<int64_t>>("perm"));
  const int rank = x.shape().rank();
  if (static_cast<int>(perm.size()) != rank) {
    return InvalidArgument("Transpose perm rank mismatch");
  }
  std::vector<bool> seen(rank, false);
  for (int64_t p : perm) {
    if (p < 0 || p >= rank || seen[p]) {
      return InvalidArgument("Transpose perm is not a permutation");
    }
    seen[p] = true;
  }
  std::vector<int64_t> out_dims(rank);
  for (int i = 0; i < rank; ++i) out_dims[i] = x.shape().dims()[perm[i]];
  Shape out_shape(out_dims);
  Tensor out = ctx->AllocateOutput(0, x.dtype(), out_shape);

  std::vector<int64_t> in_strides = ComputeStrides(x.shape());
  // Stride of the input dim that each output dim walks.
  std::vector<int64_t> walk(rank);
  for (int i = 0; i < rank; ++i) walk[i] = in_strides[perm[i]];

  const size_t elem = DTypeSize(x.dtype());
  const char* in = static_cast<const char*>(x.raw_data());
  char* result = static_cast<char*>(out.raw_mutable_data());
  std::vector<int64_t> coord(rank, 0);
  int64_t in_off = 0;
  const int64_t count = x.num_elements();
  for (int64_t i = 0; i < count; ++i) {
    std::memcpy(result + i * elem, in + in_off * elem, elem);
    for (int d = rank - 1; d >= 0; --d) {
      in_off += walk[d];
      if (++coord[d] < out_dims[d]) break;
      coord[d] = 0;
      in_off -= walk[d] * out_dims[d];
    }
  }
  return Status::OK();
}

Status ConcatKernel(KernelContext* ctx) {
  if (ctx->num_inputs() < 1) return InvalidArgument("Concat needs inputs");
  TFE_ASSIGN_OR_RETURN(int64_t axis, ctx->GetAttr<int64_t>("axis"));
  const Shape& first = ctx->input(0).shape();
  if (axis < 0) axis += first.rank();
  if (axis < 0 || axis >= first.rank()) {
    return InvalidArgument("Concat axis out of range");
  }
  int64_t axis_total = 0;
  for (int i = 0; i < ctx->num_inputs(); ++i) {
    const Shape& shape = ctx->input(i).shape();
    if (shape.rank() != first.rank() ||
        ctx->input(i).dtype() != ctx->input(0).dtype()) {
      return InvalidArgument("Concat rank or dtype mismatch");
    }
    for (int d = 0; d < first.rank(); ++d) {
      if (d != axis && shape.dims()[d] != first.dims()[d]) {
        return InvalidArgument("Concat non-axis dimension mismatch");
      }
    }
    axis_total += shape.dim(static_cast<int>(axis));
  }
  std::vector<int64_t> out_dims = first.dims();
  out_dims[axis] = axis_total;
  Shape out_shape(out_dims);
  Tensor out = ctx->AllocateOutput(0, ctx->input(0).dtype(), out_shape);

  // Treat tensors as [outer, axis*inner] row-major blocks.
  int64_t outer = 1;
  for (int64_t i = 0; i < axis; ++i) outer *= first.dims()[i];
  int64_t inner = 1;
  for (int i = static_cast<int>(axis) + 1; i < first.rank(); ++i) {
    inner *= first.dims()[i];
  }
  const size_t elem = DTypeSize(out.dtype());
  char* dst = static_cast<char*>(out.raw_mutable_data());
  const int64_t out_row_bytes = axis_total * inner * static_cast<int64_t>(elem);
  int64_t written = 0;
  for (int i = 0; i < ctx->num_inputs(); ++i) {
    const Tensor& t = ctx->input(i);
    const int64_t rows = t.shape().dim(static_cast<int>(axis)) * inner;
    const int64_t row_bytes = rows * static_cast<int64_t>(elem);
    const char* src = static_cast<const char*>(t.raw_data());
    for (int64_t o = 0; o < outer; ++o) {
      std::memcpy(dst + o * out_row_bytes + written, src + o * row_bytes,
                  row_bytes);
    }
    written += row_bytes;
  }
  return Status::OK();
}

Status SliceKernel(KernelContext* ctx) {
  const Tensor& x = ctx->input(0);
  TFE_ASSIGN_OR_RETURN(auto begin, ctx->GetAttr<std::vector<int64_t>>("begin"));
  TFE_ASSIGN_OR_RETURN(auto size, ctx->GetAttr<std::vector<int64_t>>("size"));
  const int rank = x.shape().rank();
  if (static_cast<int>(begin.size()) != rank ||
      static_cast<int>(size.size()) != rank) {
    return InvalidArgument("Slice begin/size rank mismatch");
  }
  std::vector<int64_t> out_dims(rank);
  for (int i = 0; i < rank; ++i) {
    int64_t s = size[i] == -1 ? x.shape().dims()[i] - begin[i] : size[i];
    if (begin[i] < 0 || s < 0 || begin[i] + s > x.shape().dims()[i]) {
      return InvalidArgument("Slice out of bounds");
    }
    out_dims[i] = s;
  }
  Shape out_shape(out_dims);
  Tensor out = ctx->AllocateOutput(0, x.dtype(), out_shape);
  if (out_shape.num_elements() == 0) return Status::OK();

  std::vector<int64_t> in_strides = ComputeStrides(x.shape());
  const size_t elem = DTypeSize(x.dtype());
  const char* in = static_cast<const char*>(x.raw_data());
  char* result = static_cast<char*>(out.raw_mutable_data());
  std::vector<int64_t> coord(rank, 0);
  int64_t in_off = 0;
  for (int i = 0; i < rank; ++i) in_off += begin[i] * in_strides[i];
  const int64_t count = out_shape.num_elements();
  for (int64_t i = 0; i < count; ++i) {
    std::memcpy(result + i * elem, in + in_off * elem, elem);
    for (int d = rank - 1; d >= 0; --d) {
      in_off += in_strides[d];
      if (++coord[d] < out_dims[d]) break;
      coord[d] = 0;
      in_off -= in_strides[d] * out_dims[d];
    }
  }
  return Status::OK();
}

Status PadKernel(KernelContext* ctx) {
  const Tensor& x = ctx->input(0);
  TFE_ASSIGN_OR_RETURN(auto paddings,
                       ctx->GetAttr<std::vector<int64_t>>("paddings"));
  const int rank = x.shape().rank();
  if (static_cast<int>(paddings.size()) != rank * 2) {
    return InvalidArgument("Pad paddings rank mismatch");
  }
  std::vector<int64_t> out_dims(rank);
  for (int i = 0; i < rank; ++i) {
    if (paddings[2 * i] < 0 || paddings[2 * i + 1] < 0) {
      return InvalidArgument("Pad amounts must be non-negative");
    }
    out_dims[i] = x.shape().dims()[i] + paddings[2 * i] + paddings[2 * i + 1];
  }
  Shape out_shape(out_dims);
  Tensor out = ctx->AllocateOutput(0, x.dtype(), out_shape);  // zeros

  if (x.num_elements() == 0) return Status::OK();
  std::vector<int64_t> out_strides = ComputeStrides(out_shape);
  const size_t elem = DTypeSize(x.dtype());
  const char* in = static_cast<const char*>(x.raw_data());
  char* result = static_cast<char*>(out.raw_mutable_data());
  std::vector<int64_t> coord(rank, 0);
  int64_t out_off = 0;
  for (int i = 0; i < rank; ++i) out_off += paddings[2 * i] * out_strides[i];
  const int64_t count = x.num_elements();
  for (int64_t i = 0; i < count; ++i) {
    std::memcpy(result + out_off * elem, in + i * elem, elem);
    for (int d = rank - 1; d >= 0; --d) {
      out_off += out_strides[d];
      if (++coord[d] < x.shape().dims()[d]) break;
      coord[d] = 0;
      out_off -= out_strides[d] * x.shape().dims()[d];
    }
  }
  return Status::OK();
}

Status TileKernel(KernelContext* ctx) {
  const Tensor& x = ctx->input(0);
  TFE_ASSIGN_OR_RETURN(auto multiples,
                       ctx->GetAttr<std::vector<int64_t>>("multiples"));
  const int rank = x.shape().rank();
  if (static_cast<int>(multiples.size()) != rank) {
    return InvalidArgument("Tile multiples rank mismatch");
  }
  std::vector<int64_t> out_dims(rank);
  for (int i = 0; i < rank; ++i) {
    out_dims[i] = x.shape().dims()[i] * multiples[i];
  }
  Shape out_shape(out_dims);
  Tensor out = ctx->AllocateOutput(0, x.dtype(), out_shape);

  std::vector<int64_t> in_strides = ComputeStrides(x.shape());
  const size_t elem = DTypeSize(x.dtype());
  const char* in = static_cast<const char*>(x.raw_data());
  char* result = static_cast<char*>(out.raw_mutable_data());
  std::vector<int64_t> coord(rank, 0);
  const int64_t count = out_shape.num_elements();
  for (int64_t i = 0; i < count; ++i) {
    int64_t in_off = 0;
    for (int d = 0; d < rank; ++d) {
      in_off += (coord[d] % x.shape().dims()[d]) * in_strides[d];
    }
    std::memcpy(result + i * elem, in + in_off * elem, elem);
    for (int d = rank - 1; d >= 0; --d) {
      if (++coord[d] < out_dims[d]) break;
      coord[d] = 0;
    }
  }
  return Status::OK();
}

Status GatherKernel(KernelContext* ctx) {
  const Tensor& params = ctx->input(0);
  const Tensor& indices = ctx->input(1);
  if (params.shape().rank() < 1) {
    return InvalidArgument("Gather params must have rank >= 1");
  }
  if (!IsInteger(indices.dtype())) {
    return InvalidArgument("Gather indices must be integer");
  }
  std::vector<int64_t> out_dims = indices.shape().dims();
  for (int i = 1; i < params.shape().rank(); ++i) {
    out_dims.push_back(params.shape().dims()[i]);
  }
  Shape out_shape(out_dims);
  Tensor out = ctx->AllocateOutput(0, params.dtype(), out_shape);

  const int64_t slice_elems =
      params.num_elements() / params.shape().dim(0);
  const size_t slice_bytes = slice_elems * DTypeSize(params.dtype());
  const char* src = static_cast<const char*>(params.raw_data());
  char* dst = static_cast<char*>(out.raw_mutable_data());
  const int64_t n = indices.num_elements();
  for (int64_t i = 0; i < n; ++i) {
    int64_t index = indices.dtype() == DType::kInt32
                        ? indices.data<int32_t>()[i]
                        : indices.data<int64_t>()[i];
    if (index < 0 || index >= params.shape().dim(0)) {
      return OutOfRange("Gather index out of range");
    }
    std::memcpy(dst + i * slice_bytes, src + index * slice_bytes, slice_bytes);
  }
  return Status::OK();
}

Status RangeKernel(KernelContext* ctx) {
  TFE_ASSIGN_OR_RETURN(double start, ctx->GetAttr<double>("start"));
  TFE_ASSIGN_OR_RETURN(double limit, ctx->GetAttr<double>("limit"));
  double delta = ctx->GetAttrOr<double>("delta", 1.0);
  DType dtype = ctx->GetAttrOr<DType>("dtype", DType::kInt64);
  if (delta == 0.0) return InvalidArgument("Range delta must be nonzero");
  double span = (limit - start) / delta;
  int64_t count = span > 0 ? static_cast<int64_t>(std::ceil(span)) : 0;
  Tensor out = ctx->AllocateOutput(0, dtype, Shape({count}));
  TFE_SWITCH_NUMERIC(dtype, T, {
    T* data = out.mutable_data<T>();
    for (int64_t i = 0; i < count; ++i) {
      data[i] = static_cast<T>(start + delta * static_cast<double>(i));
    }
  });
  return Status::OK();
}

// data [n, ...], segment_ids [n] -> [num_segments, ...] row sums.
Status UnsortedSegmentSumKernel(KernelContext* ctx) {
  const Tensor& data = ctx->input(0);
  const Tensor& ids = ctx->input(1);
  TFE_ASSIGN_OR_RETURN(int64_t segments, ctx->GetAttr<int64_t>("num_segments"));
  if (data.shape().rank() < 1 || ids.shape().rank() != 1 ||
      ids.shape().dim(0) != data.shape().dim(0)) {
    return InvalidArgument("UnsortedSegmentSum expects data [n,...], ids [n]");
  }
  if (!IsInteger(ids.dtype())) {
    return InvalidArgument("UnsortedSegmentSum ids must be integer");
  }
  std::vector<int64_t> out_dims = {segments};
  for (int i = 1; i < data.shape().rank(); ++i) {
    out_dims.push_back(data.shape().dims()[i]);
  }
  Tensor out = ctx->AllocateOutput(0, data.dtype(), Shape(out_dims));
  const int64_t rows = data.shape().dim(0);
  const int64_t row_elems = rows > 0 ? data.num_elements() / rows : 0;
  TFE_SWITCH_NUMERIC(data.dtype(), T, {
    const T* in = data.data<T>();
    T* result = out.mutable_data<T>();
    for (int64_t r = 0; r < rows; ++r) {
      int64_t segment = ids.dtype() == DType::kInt32
                            ? ids.data<int32_t>()[r]
                            : ids.data<int64_t>()[r];
      if (segment < 0 || segment >= segments) continue;  // TF drops them
      const T* src = in + r * row_elems;
      T* dst = result + segment * row_elems;
      for (int64_t i = 0; i < row_elems; ++i) dst[i] += src[i];
    }
  });
  return Status::OK();
}

}  // namespace

void RegisterShapeOpKernels() {
  RegisterKernel("Reshape", ReshapeKernel);
  RegisterKernel("ExpandDims", ExpandDimsKernel);
  RegisterKernel("Squeeze", SqueezeKernel);
  RegisterKernel("Transpose", TransposeKernel);
  RegisterKernel("Concat", ConcatKernel);
  RegisterKernel("Slice", SliceKernel);
  RegisterKernel("Pad", PadKernel);
  RegisterKernel("Tile", TileKernel);
  RegisterKernel("Gather", GatherKernel);
  RegisterKernel("UnsortedSegmentSum", UnsortedSegmentSumKernel);
  RegisterKernel("Range", RangeKernel);
}

}  // namespace kernels
}  // namespace tfe
