// Identity-like and no-op kernels.
#include "kernels/kernel_util.h"

namespace tfe {
namespace kernels {
namespace {

// Identity and StopGradient share storage with their input; StopGradient's
// semantics live entirely in its (absent) gradient.
Status IdentityKernel(KernelContext* ctx) {
  const Tensor& x = ctx->input(0);
  if (x.is_resource() || x.is_opaque()) {
    ctx->SetOutput(0, x);
    return Status::OK();
  }
  ctx->SetOutput(0, Tensor::Concrete(x.dtype(), x.shape(), x.buffer(),
                                     ctx->device()));
  return Status::OK();
}

Status NoOpKernel(KernelContext* ctx) { return Status::OK(); }

}  // namespace

void RegisterControlKernels() {
  RegisterKernel("Identity", IdentityKernel);
  RegisterKernel("StopGradient", IdentityKernel);
  RegisterKernel("NoOp", NoOpKernel);
}

}  // namespace kernels
}  // namespace tfe
