#include "models/mlp.h"

#include <cmath>

#include "support/strings.h"

namespace tfe {
namespace models {

Dense::Dense(int64_t in_features, int64_t out_features, bool relu,
             int64_t seed, const std::string& name)
    : relu_(relu) {
  // Glorot-style scale; seeded so eager and staged runs are reproducible.
  double stddev = std::sqrt(2.0 / static_cast<double>(in_features));
  Tensor kernel_init = ops::random_normal({in_features, out_features}, 0.0,
                                          stddev, seed == 0 ? 7 : seed);
  kernel_ = Variable(kernel_init, name + "/kernel");
  bias_ = Variable(ops::zeros(DType::kFloat32, {out_features}),
                   name + "/bias");
  TrackVariable("kernel", kernel_);
  TrackVariable("bias", bias_);
}

Tensor Dense::operator()(const Tensor& x) const {
  Tensor y = ops::add(ops::matmul(x, kernel_.value()), bias_.value());
  return relu_ ? ops::relu(y) : y;
}

MLP::MLP(const std::vector<int64_t>& layer_sizes, int64_t seed) {
  TFE_CHECK_GE(layer_sizes.size(), 2u);
  for (size_t i = 0; i + 1 < layer_sizes.size(); ++i) {
    bool relu = i + 2 < layer_sizes.size();
    layers_.push_back(std::make_unique<Dense>(
        layer_sizes[i], layer_sizes[i + 1], relu, seed + 13 * (i + 1),
        strings::StrCat("mlp/dense_", i)));
    TrackChild(strings::StrCat("dense_", i), layers_.back().get());
  }
}

Tensor MLP::operator()(const Tensor& x) const {
  Tensor h = x;
  for (const auto& layer : layers_) h = (*layer)(h);
  return h;
}

std::vector<Variable> MLP::variables() const {
  std::vector<Variable> variables;
  for (const auto& layer : layers_) {
    for (const Variable& variable : layer->variables()) {
      variables.push_back(variable);
    }
  }
  return variables;
}

Tensor MLP::Loss(const Tensor& x, const Tensor& labels) const {
  Tensor losses =
      ops::sparse_softmax_cross_entropy_with_logits((*this)(x), labels);
  return ops::reduce_mean(losses);
}

Tensor MLP::TrainStep(const Tensor& x, const Tensor& labels,
                      double lr) const {
  GradientTape tape;
  Tensor loss = Loss(x, labels);
  tape.StopRecording();
  std::vector<Variable> vars = variables();
  std::vector<Tensor> grads = gradient(tape, loss, vars);
  ApplySgd(vars, grads, lr);
  return loss;
}

void ApplySgd(const std::vector<Variable>& variables,
              const std::vector<Tensor>& gradients, double lr) {
  TFE_CHECK_EQ(variables.size(), gradients.size());
  for (size_t i = 0; i < variables.size(); ++i) {
    if (!gradients[i].defined()) continue;
    Tensor rate = ops::fill(gradients[i].dtype(), Shape(), lr);
    variables[i].assign_sub(ops::mul(gradients[i], rate));
  }
}

}  // namespace models
}  // namespace tfe
