#include "models/l2hmc.h"

#include "staging/control_flow.h"
#include "support/strings.h"

namespace tfe {
namespace models {

namespace {
using ops::operator+;
using ops::operator-;
using ops::operator*;
using ops::operator/;

Tensor Scalar(double value) { return ops::fill(DType::kFloat32, {}, value); }
}  // namespace

L2hmcNetwork::L2hmcNetwork(int64_t dim, int64_t hidden, int64_t seed,
                           const std::string& name) {
  input_x_ = std::make_unique<Dense>(dim, hidden, false, seed + 1,
                                     name + "/input_x");
  input_v_ = std::make_unique<Dense>(dim, hidden, false, seed + 2,
                                     name + "/input_v");
  hidden_ = std::make_unique<Dense>(hidden, hidden, true, seed + 3,
                                    name + "/hidden");
  scale_head_ = std::make_unique<Dense>(hidden, dim, false, seed + 4,
                                        name + "/scale");
  translation_head_ = std::make_unique<Dense>(hidden, dim, false, seed + 5,
                                              name + "/translation");
  transform_head_ = std::make_unique<Dense>(hidden, dim, false, seed + 6,
                                            name + "/transform");
  TrackChild("input_x", input_x_.get());
  TrackChild("input_v", input_v_.get());
  TrackChild("hidden", hidden_.get());
  TrackChild("scale", scale_head_.get());
  TrackChild("translation", translation_head_.get());
  TrackChild("transform", transform_head_.get());
}

L2hmcNetwork::Heads L2hmcNetwork::operator()(const Tensor& x,
                                             const Tensor& v) const {
  Tensor h = ops::relu((*input_x_)(x) + (*input_v_)(v));
  h = (*hidden_)(h);
  Heads heads;
  heads.scale = ops::tanh((*scale_head_)(h));
  heads.translation = (*translation_head_)(h);
  heads.transformation = ops::tanh((*transform_head_)(h));
  return heads;
}

void L2hmcNetwork::CollectVariables(std::vector<Variable>* out) const {
  for (const Dense* layer :
       {input_x_.get(), input_v_.get(), hidden_.get(), scale_head_.get(),
        translation_head_.get(), transform_head_.get()}) {
    for (const Variable& v : layer->variables()) out->push_back(v);
  }
}

L2hmcDynamics::L2hmcDynamics(const Config& config) : config_(config) {
  position_net_ = std::make_unique<L2hmcNetwork>(
      config.dim, config.hidden, config.seed, "l2hmc/position_net");
  momentum_net_ = std::make_unique<L2hmcNetwork>(
      config.dim, config.hidden, config.seed + 100, "l2hmc/momentum_net");
  TrackChild("position_net", position_net_.get());
  TrackChild("momentum_net", momentum_net_.get());
}

Tensor L2hmcDynamics::LogProb(const Tensor& x) const {
  // Strongly-correlated 2-D Gaussian: the reference benchmark's target.
  // log p(x) = -1/2 sum over the quadratic form with variances (100, 0.1)
  // along the rotated axes.
  Tensor sum = ops::slice(x, {0, 0}, {-1, 1}) + ops::slice(x, {0, 1}, {-1, 1});
  Tensor diff = ops::slice(x, {0, 0}, {-1, 1}) - ops::slice(x, {0, 1}, {-1, 1});
  Tensor quad = ops::square(sum) / Scalar(200.0) +
                ops::square(diff) / Scalar(0.2);
  return ops::neg(ops::squeeze(quad, {1}) * Scalar(0.5));
}

L2hmcDynamics::LeapfrogState L2hmcDynamics::LeapfrogStep(
    const LeapfrogState& state) const {
  const double eps = config_.step_size;
  Tensor x = state.x;
  Tensor v = state.v;
  Tensor log_jacobian = state.log_jacobian;
  // The learned leapfrog integrator: v half-step (momentum net), x full
  // step (position net), v half-step. The log-Jacobian of the scale terms
  // accumulates into the acceptance ratio.
  //
  // Half-step momentum update.
  {
    GradientTape tape;
    tape.watch(x);
    Tensor energy = ops::reduce_sum(LogProb(x));
    tape.StopRecording();
    auto grads = tape.gradient(energy, {x});
    grads.status().ThrowIfError();
    Tensor grad_x = (*grads)[0];
    L2hmcNetwork::Heads heads = (*momentum_net_)(x, grad_x);
    Tensor scale = ops::exp(heads.scale * Scalar(0.5 * eps));
    v = v * scale +
        Scalar(0.5 * eps) * (grad_x * ops::exp(heads.transformation) +
                             heads.translation);
    log_jacobian =
        log_jacobian + ops::reduce_sum(heads.scale * Scalar(0.5 * eps), {1});
  }
  // Full-step position update.
  {
    L2hmcNetwork::Heads heads = (*position_net_)(x, v);
    Tensor scale = ops::exp(heads.scale * Scalar(eps));
    x = x * scale +
        Scalar(eps) * (v * ops::exp(heads.transformation) +
                       heads.translation);
    log_jacobian =
        log_jacobian + ops::reduce_sum(heads.scale * Scalar(eps), {1});
  }
  // Half-step momentum update.
  {
    GradientTape tape;
    tape.watch(x);
    Tensor energy = ops::reduce_sum(LogProb(x));
    tape.StopRecording();
    auto grads = tape.gradient(energy, {x});
    grads.status().ThrowIfError();
    Tensor grad_x = (*grads)[0];
    L2hmcNetwork::Heads heads = (*momentum_net_)(x, grad_x);
    Tensor scale = ops::exp(heads.scale * Scalar(0.5 * eps));
    v = v * scale +
        Scalar(0.5 * eps) * (grad_x * ops::exp(heads.transformation) +
                             heads.translation);
    log_jacobian =
        log_jacobian + ops::reduce_sum(heads.scale * Scalar(0.5 * eps), {1});
  }
  return {x, v, log_jacobian};
}

L2hmcDynamics::Proposal L2hmcDynamics::Transition(const Tensor& x0) const {
  const int64_t n = x0.shape().dim(0);
  const int64_t dim = config_.dim;

  Tensor x = x0;
  Tensor v = config_.sample_seed == 0
                 ? ops::random_normal({n, dim})
                 : ops::random_normal({n, dim}, 0.0, 1.0,
                                      config_.sample_seed);
  Tensor log_prob0 = LogProb(x);
  Tensor kinetic0 = ops::reduce_sum(ops::square(v), {1}) * Scalar(0.5);

  LeapfrogState state{x, v, ops::zeros(DType::kFloat32, {n})};
  if (config_.staged_loop) {
    // One While node over {step, x, v, log_jacobian}; the body is the same
    // LeapfrogStep the unrolled path runs, traced once. The +1 on
    // maximum_iterations pays for the final (false) cond evaluation; it is
    // also the bound on the While gradient's snapshot stack.
    if (leapfrog_body_ == nullptr) {
      leapfrog_cond_ = std::make_unique<Function>(
          [steps = config_.leapfrog_steps](
              const std::vector<Tensor>& vars) -> std::vector<Tensor> {
            return {ops::less(vars[0],
                              ops::fill(DType::kInt32, {},
                                        static_cast<double>(steps)))};
          },
          "l2hmc_leapfrog_cond");
      leapfrog_body_ = std::make_unique<Function>(
          [this](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
            LeapfrogState next = LeapfrogStep({vars[1], vars[2], vars[3]});
            return {ops::add(vars[0], ops::fill(DType::kInt32, {}, 1.0)),
                    next.x, next.v, next.log_jacobian};
          },
          "l2hmc_leapfrog_body");
    }
    std::vector<Tensor> out = ops::while_loop(
        *leapfrog_cond_, *leapfrog_body_,
        {ops::fill(DType::kInt32, {}, 0.0), state.x, state.v,
         state.log_jacobian},
        config_.leapfrog_steps + 1);
    state = {out[1], out[2], out[3]};
  } else {
    for (int64_t step = 0; step < config_.leapfrog_steps; ++step) {
      state = LeapfrogStep(state);
    }
  }
  x = state.x;
  v = state.v;
  Tensor log_jacobian = state.log_jacobian;

  // Metropolis-Hastings correction.
  Tensor log_prob1 = LogProb(x);
  Tensor kinetic1 = ops::reduce_sum(ops::square(v), {1}) * Scalar(0.5);
  Tensor log_accept =
      (log_prob1 - kinetic1) - (log_prob0 - kinetic0) + log_jacobian;
  Tensor accept_prob =
      ops::minimum(ops::exp(ops::minimum(log_accept, ops::zeros_like(log_accept))),
                   ops::ones_like(log_accept));
  Tensor uniform = config_.sample_seed == 0
                       ? ops::random_uniform({n})
                       : ops::random_uniform({n}, 0.0, 1.0,
                                             config_.sample_seed + 1);
  Tensor accept_mask =
      ops::cast(ops::less(uniform, accept_prob), DType::kFloat32);
  Tensor mask2d = ops::expand_dims(accept_mask, 1);

  Proposal proposal;
  proposal.x_out =
      x * mask2d + x0 * (ops::ones_like(mask2d) - mask2d);
  proposal.accept_prob = accept_prob;
  return proposal;
}

Tensor L2hmcDynamics::Loss(const Tensor& x) const {
  Proposal proposal = Transition(x);
  // Expected squared jump distance, weighted by acceptance probability.
  Tensor jump = ops::reduce_sum(ops::square(proposal.x_out - x), {1});
  Tensor esjd = proposal.accept_prob * jump + Scalar(1e-4);
  const double scale = 0.1;
  Tensor loss_terms =
      Scalar(scale) / esjd - esjd / Scalar(scale);
  return ops::reduce_mean(loss_terms);
}

Tensor L2hmcDynamics::TrainStep(const Tensor& x, double lr) const {
  GradientTape tape;
  Tensor loss = Loss(x);
  tape.StopRecording();
  std::vector<Variable> vars = variables();
  std::vector<Tensor> grads = gradient(tape, loss, vars);
  ApplySgd(vars, grads, lr);
  return loss;
}

std::vector<Variable> L2hmcDynamics::variables() const {
  std::vector<Variable> variables;
  position_net_->CollectVariables(&variables);
  momentum_net_->CollectVariables(&variables);
  return variables;
}

}  // namespace models
}  // namespace tfe
