#include "models/optimizers.h"

#include "support/strings.h"

namespace tfe {
namespace models {

namespace {
Tensor ScalarOf(const Tensor& like, double value) {
  return ops::fill(like.dtype(), Shape(), value);
}
}  // namespace

Variable Optimizer::Slot(const Variable& variable,
                         const std::string& slot_name) {
  auto key = std::make_pair(variable.storage()->resource_id(), slot_name);
  auto it = slots_.find(key);
  if (it != slots_.end()) return it->second;
  // Zero-initialized host tensor: concrete even under an active trace, so
  // lazy slot creation composes with the state-creation contract.
  Variable slot(tensor_util::Zeros(variable.dtype(), variable.shape()),
                variable.name() + "/" + slot_name);
  TrackVariable(strings::StrCat(slot_name, "_", slots_.size()), slot);
  slots_.emplace(key, slot);
  return slot;
}

SGD::SGD(double learning_rate, double momentum)
    : learning_rate_(learning_rate), momentum_(momentum) {}

void SGD::ApplyGradients(const std::vector<Variable>& variables,
                         const std::vector<Tensor>& gradients) {
  TFE_CHECK_EQ(variables.size(), gradients.size());
  for (size_t i = 0; i < variables.size(); ++i) {
    if (!gradients[i].defined()) continue;
    const Variable& variable = variables[i];
    const Tensor& grad = gradients[i];
    if (momentum_ == 0.0) {
      variable.assign_sub(ops::mul(grad, ScalarOf(grad, learning_rate_)));
      continue;
    }
    Variable accumulator = Slot(variable, "momentum");
    Tensor next = ops::add(
        ops::mul(accumulator.value(), ScalarOf(grad, momentum_)), grad);
    accumulator.assign(next);
    variable.assign_sub(ops::mul(next, ScalarOf(grad, learning_rate_)));
  }
}

Adam::Adam(double learning_rate, double beta1, double beta2, double epsilon)
    : learning_rate_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon),
      step_(tensor_util::Scalar<float>(0.0f), "adam/step") {
  TrackVariable("step", step_);
}

void Adam::ApplyGradients(const std::vector<Variable>& variables,
                          const std::vector<Tensor>& gradients) {
  TFE_CHECK_EQ(variables.size(), gradients.size());
  step_.assign_add(ops::fill(DType::kFloat32, {}, 1.0));
  Tensor t = step_.value();
  // Bias-corrected step size: lr * sqrt(1 - b2^t) / (1 - b1^t).
  Tensor one = ops::fill(DType::kFloat32, {}, 1.0);
  Tensor b1t = ops::pow(ops::fill(DType::kFloat32, {}, beta1_), t);
  Tensor b2t = ops::pow(ops::fill(DType::kFloat32, {}, beta2_), t);
  Tensor step_size =
      ops::div(ops::mul(ops::fill(DType::kFloat32, {}, learning_rate_),
                        ops::sqrt(ops::sub(one, b2t))),
               ops::sub(one, b1t));

  for (size_t i = 0; i < variables.size(); ++i) {
    if (!gradients[i].defined()) continue;
    const Variable& variable = variables[i];
    const Tensor& grad = gradients[i];
    Variable m = Slot(variable, "m");
    Variable v = Slot(variable, "v");
    Tensor m_next = ops::add(ops::mul(m.value(), ScalarOf(grad, beta1_)),
                             ops::mul(grad, ScalarOf(grad, 1.0 - beta1_)));
    Tensor v_next =
        ops::add(ops::mul(v.value(), ScalarOf(grad, beta2_)),
                 ops::mul(ops::square(grad), ScalarOf(grad, 1.0 - beta2_)));
    m.assign(m_next);
    v.assign(v_next);
    Tensor lr = step_size.dtype() == grad.dtype()
                    ? step_size
                    : ops::cast(step_size, grad.dtype());
    Tensor update =
        ops::div(ops::mul(m_next, lr),
                 ops::add(ops::sqrt(v_next), ScalarOf(grad, epsilon_)));
    variable.assign_sub(update);
  }
}

}  // namespace models
}  // namespace tfe
