#include "models/resnet.h"

#include <algorithm>
#include <cmath>

#include "support/strings.h"

namespace tfe {
namespace models {

namespace {
constexpr double kBatchNormMomentum = 0.9;
}

ConvLayer::ConvLayer(int64_t kernel, int64_t in_channels,
                     int64_t out_channels, int64_t stride,
                     const std::string& name, int64_t seed)
    : strides_({stride, stride}) {
  double fan_in = static_cast<double>(kernel * kernel * in_channels);
  Tensor init = ops::random_normal({kernel, kernel, in_channels, out_channels},
                                   0.0, std::sqrt(2.0 / fan_in), seed);
  filter_ = Variable(init, name + "/filter");
  TrackVariable("filter", filter_);
}

Tensor ConvLayer::operator()(const Tensor& x) const {
  return ops::conv2d(x, filter_.value(), strides_, "SAME");
}

BatchNormLayer::BatchNormLayer(int64_t channels, const std::string& name) {
  scale_ = Variable(ops::ones(DType::kFloat32, {channels}), name + "/scale");
  offset_ = Variable(ops::zeros(DType::kFloat32, {channels}),
                     name + "/offset");
  moving_mean_ = Variable(ops::zeros(DType::kFloat32, {channels}),
                          name + "/moving_mean");
  moving_variance_ = Variable(ops::ones(DType::kFloat32, {channels}),
                              name + "/moving_variance");
  TrackVariable("scale", scale_);
  TrackVariable("offset", offset_);
  TrackVariable("moving_mean", moving_mean_);
  TrackVariable("moving_variance", moving_variance_);
}

Tensor BatchNormLayer::operator()(const Tensor& x, bool training) const {
  ops::BatchNormResult result = ops::fused_batch_norm(
      x, scale_.value(), offset_.value(), moving_mean_.value(),
      moving_variance_.value(), training);
  if (training) {
    Tensor momentum =
        ops::fill(DType::kFloat32, Shape(), kBatchNormMomentum);
    Tensor rest = ops::fill(DType::kFloat32, Shape(),
                            1.0 - kBatchNormMomentum);
    moving_mean_.assign(ops::add(ops::mul(moving_mean_.value(), momentum),
                                 ops::mul(result.batch_mean, rest)));
    moving_variance_.assign(
        ops::add(ops::mul(moving_variance_.value(), momentum),
                 ops::mul(result.batch_variance, rest)));
  }
  return result.y;
}

BottleneckBlock::BottleneckBlock(int64_t in_channels,
                                 int64_t bottleneck_channels,
                                 int64_t out_channels, int64_t stride,
                                 const std::string& name, int64_t seed) {
  conv1_ = std::make_unique<ConvLayer>(1, in_channels, bottleneck_channels, 1,
                                       name + "/conv1", seed + 1);
  bn1_ = std::make_unique<BatchNormLayer>(bottleneck_channels, name + "/bn1");
  conv2_ = std::make_unique<ConvLayer>(3, bottleneck_channels,
                                       bottleneck_channels, stride,
                                       name + "/conv2", seed + 2);
  bn2_ = std::make_unique<BatchNormLayer>(bottleneck_channels, name + "/bn2");
  conv3_ = std::make_unique<ConvLayer>(1, bottleneck_channels, out_channels, 1,
                                       name + "/conv3", seed + 3);
  bn3_ = std::make_unique<BatchNormLayer>(out_channels, name + "/bn3");
  if (in_channels != out_channels || stride != 1) {
    shortcut_conv_ = std::make_unique<ConvLayer>(
        1, in_channels, out_channels, stride, name + "/shortcut", seed + 4);
    shortcut_bn_ =
        std::make_unique<BatchNormLayer>(out_channels, name + "/shortcut_bn");
  }
  TrackChild("conv1", conv1_.get());
  TrackChild("bn1", bn1_.get());
  TrackChild("conv2", conv2_.get());
  TrackChild("bn2", bn2_.get());
  TrackChild("conv3", conv3_.get());
  TrackChild("bn3", bn3_.get());
  if (shortcut_conv_ != nullptr) {
    TrackChild("shortcut_conv", shortcut_conv_.get());
    TrackChild("shortcut_bn", shortcut_bn_.get());
  }
}

Tensor BottleneckBlock::operator()(const Tensor& x, bool training) const {
  Tensor h = ops::relu((*bn1_)((*conv1_)(x), training));
  h = ops::relu((*bn2_)((*conv2_)(h), training));
  h = (*bn3_)((*conv3_)(h), training);
  Tensor shortcut = x;
  if (shortcut_conv_ != nullptr) {
    shortcut = (*shortcut_bn_)((*shortcut_conv_)(x), training);
  }
  return ops::relu(ops::add(h, shortcut));
}

void BottleneckBlock::CollectVariables(std::vector<Variable>* out) const {
  for (const ConvLayer* conv :
       {conv1_.get(), conv2_.get(), conv3_.get(), shortcut_conv_.get()}) {
    if (conv == nullptr) continue;
    for (const Variable& v : conv->variables()) out->push_back(v);
  }
  for (const BatchNormLayer* bn :
       {bn1_.get(), bn2_.get(), bn3_.get(), shortcut_bn_.get()}) {
    if (bn == nullptr) continue;
    for (const Variable& v : bn->variables()) out->push_back(v);
  }
}

ResNet50::ResNet50(const Config& config) : config_(config) {
  const int64_t divisor = std::max<int64_t>(1, config.width_divisor);
  auto width = [divisor](int64_t channels) {
    return std::max<int64_t>(1, channels / divisor);
  };
  int64_t seed = config.seed;
  stem_conv_ = std::make_unique<ConvLayer>(7, config.input_channels,
                                           width(64), 2, "resnet/stem",
                                           seed += 10);
  stem_bn_ = std::make_unique<BatchNormLayer>(width(64), "resnet/stem_bn");
  TrackChild("stem_conv", stem_conv_.get());
  TrackChild("stem_bn", stem_bn_.get());

  struct StageSpec {
    int64_t bottleneck, out, stride;
  };
  std::vector<StageSpec> stages = {
      {width(64), width(256), 1},
      {width(128), width(512), 2},
      {width(256), width(1024), 2},
      {width(512), width(2048), 2},
  };
  int64_t in_channels = width(64);
  for (size_t s = 0; s < stages.size(); ++s) {
    int64_t blocks = s < config.blocks_per_stage.size()
                         ? config.blocks_per_stage[s]
                         : 1;
    for (int64_t b = 0; b < blocks; ++b) {
      int64_t stride = b == 0 ? stages[s].stride : 1;
      blocks_.push_back(std::make_unique<BottleneckBlock>(
          in_channels, stages[s].bottleneck, stages[s].out, stride,
          strings::StrCat("resnet/stage", s, "/block", b), seed += 10));
      TrackChild(strings::StrCat("stage", s, "_block", b),
                 blocks_.back().get());
      in_channels = stages[s].out;
    }
  }
  head_ = std::make_unique<Dense>(in_channels, config.num_classes, false,
                                  seed + 999, "resnet/head");
  TrackChild("head", head_.get());
}

Tensor ResNet50::operator()(const Tensor& images, bool training) const {
  Tensor h = (*stem_conv_)(images);
  h = ops::relu((*stem_bn_)(h, training));
  h = ops::max_pool(h, {3, 3}, {2, 2}, "SAME");
  for (const auto& block : blocks_) {
    h = (*block)(h, training);
  }
  // Global average pool over the spatial dims, then the classifier head.
  h = ops::reduce_mean(h, {1, 2});
  return (*head_)(h);
}

Tensor ResNet50::Loss(const Tensor& images, const Tensor& labels,
                      bool training) const {
  Tensor losses = ops::sparse_softmax_cross_entropy_with_logits(
      (*this)(images, training), labels);
  return ops::reduce_mean(losses);
}

Tensor ResNet50::TrainStep(const Tensor& images, const Tensor& labels,
                           double lr) const {
  GradientTape tape;
  Tensor loss = Loss(images, labels, /*training=*/true);
  tape.StopRecording();
  std::vector<Variable> vars = variables();
  std::vector<Tensor> grads = gradient(tape, loss, vars);
  ApplySgd(vars, grads, lr);
  return loss;
}

std::vector<Variable> ResNet50::variables() const {
  std::vector<Variable> variables;
  for (const Variable& v : stem_conv_->variables()) variables.push_back(v);
  for (const Variable& v : stem_bn_->variables()) variables.push_back(v);
  for (const auto& block : blocks_) block->CollectVariables(&variables);
  for (const Variable& v : head_->variables()) variables.push_back(v);
  return variables;
}

}  // namespace models
}  // namespace tfe
