// Small layer library + MLP classifier, written purely against the public
// API — usable eagerly or staged, like the paper's example models.
#ifndef TFE_MODELS_MLP_H_
#define TFE_MODELS_MLP_H_

#include <string>
#include <vector>

#include "api/tfe.h"

namespace tfe {
namespace models {

// Fully-connected layer with optional ReLU.
class Dense : public Checkpointable {
 public:
  Dense(int64_t in_features, int64_t out_features, bool relu = false,
        int64_t seed = 0, const std::string& name = "dense");

  Tensor operator()(const Tensor& x) const;

  std::vector<Variable> variables() const { return {kernel_, bias_}; }
  const Variable& kernel() const { return kernel_; }
  const Variable& bias() const { return bias_; }

 private:
  Variable kernel_;
  Variable bias_;
  bool relu_;
};

// Multi-layer perceptron classifier.
class MLP : public Checkpointable {
 public:
  // layer_sizes = {in, hidden..., out}; hidden layers use ReLU.
  explicit MLP(const std::vector<int64_t>& layer_sizes, int64_t seed = 0);

  // Logits for a [batch, in] input.
  Tensor operator()(const Tensor& x) const;

  std::vector<Variable> variables() const;

  // Mean cross-entropy against integer labels.
  Tensor Loss(const Tensor& x, const Tensor& labels) const;

  // One eager SGD step; returns the scalar loss value.
  Tensor TrainStep(const Tensor& x, const Tensor& labels, double lr) const;

 private:
  std::vector<std::unique_ptr<Dense>> layers_;
};

// Plain SGD update: v -= lr * g for each (variable, gradient) pair.
// Undefined gradients are skipped. Works inside traces (the updates become
// staged assignments).
void ApplySgd(const std::vector<Variable>& variables,
              const std::vector<Tensor>& gradients, double lr);

}  // namespace models
}  // namespace tfe

#endif  // TFE_MODELS_MLP_H_
