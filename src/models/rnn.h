// Recurrent models — the paper's motivating dynamic workloads ("some
// researchers use it to implement dynamic language models", §7; host
// control flow makes data-dependent models easy, §3).
//
// Two drivers over the same LSTM cell:
//  * UnrolledRnn — a host loop over time steps: tracing unrolls it into the
//    graph (paper §4.1), fixed sequence length per trace, differentiable.
//  * DynamicRnn — a staged while_loop whose iteration count is a *runtime*
//    tensor (the sequence length): one trace serves any length, the
//    tf.while story of §4.1. Differentiable like the unrolled form — the
//    While gradient replays the staged step function per time step in
//    reverse.
#ifndef TFE_MODELS_RNN_H_
#define TFE_MODELS_RNN_H_

#include <memory>
#include <utility>

#include "api/tfe.h"

namespace tfe {
namespace models {

class LSTMCell : public Checkpointable {
 public:
  LSTMCell(int64_t input_size, int64_t hidden_size, int64_t seed = 0,
           const std::string& name = "lstm");

  struct State {
    Tensor h;  // [batch, hidden]
    Tensor c;  // [batch, hidden]
  };

  // One step: x [batch, input_size] -> next state.
  State operator()(const Tensor& x, const State& state) const;

  // Zero state for a batch.
  State ZeroState(int64_t batch) const;

  int64_t hidden_size() const { return hidden_size_; }
  std::vector<Variable> variables() const { return {kernel_, bias_}; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  Variable kernel_;  // [input+hidden, 4*hidden]
  Variable bias_;    // [4*hidden]
};

// Runs the cell over `sequence` [batch, time, input] for all `time` steps
// with a host loop (unrolls under tracing). Returns the final hidden state
// [batch, hidden]. Differentiable.
Tensor UnrolledRnn(const LSTMCell& cell, const Tensor& sequence);

// Runs the cell for `length` (scalar int32 tensor, <= time) steps using a
// staged while_loop: the iteration count is decided by the *value* of
// `length` at execution time, so one trace handles every length.
// Differentiable: the While gradient replays the step function's staged
// backward once per executed time step in reverse, so d(output)/d(cell
// variables) matches the unrolled loop's tape gradient.
Tensor DynamicRnn(const LSTMCell& cell, const Tensor& sequence,
                  const Tensor& length);

}  // namespace models
}  // namespace tfe

#endif  // TFE_MODELS_RNN_H_
