// Optimizers with slot variables.
//
// Slots (momentum buffers, Adam moments) are ordinary variables created
// lazily on first use and tracked as named edges, so optimizer state
// checkpoints and restores through graph-based state matching exactly like
// model weights (paper §4.3). ApplyGradients is built from primitive
// operations, so a training step using an optimizer stages cleanly.
#ifndef TFE_MODELS_OPTIMIZERS_H_
#define TFE_MODELS_OPTIMIZERS_H_

#include <map>
#include <string>
#include <vector>

#include "api/tfe.h"

namespace tfe {
namespace models {

class Optimizer : public Checkpointable {
 public:
  virtual ~Optimizer() = default;

  // Applies one update step. `gradients[i]` pairs with `variables[i]`;
  // undefined gradients are skipped.
  virtual void ApplyGradients(const std::vector<Variable>& variables,
                              const std::vector<Tensor>& gradients) = 0;

 protected:
  // Returns (creating and tracking on first use) the named slot variable
  // for `variable`, zero-initialized with the variable's type/shape.
  Variable Slot(const Variable& variable, const std::string& slot_name);

 private:
  std::map<std::pair<int64_t, std::string>, Variable> slots_;
};

// SGD with optional momentum:
//   m <- momentum * m + g;  v <- v - lr * m        (momentum > 0)
//   v <- v - lr * g                                 (momentum == 0)
class SGD : public Optimizer {
 public:
  explicit SGD(double learning_rate, double momentum = 0.0);
  void ApplyGradients(const std::vector<Variable>& variables,
                      const std::vector<Tensor>& gradients) override;

 private:
  double learning_rate_;
  double momentum_;
};

// Adam (Kingma & Ba, 2015) with bias correction.
class Adam : public Optimizer {
 public:
  explicit Adam(double learning_rate, double beta1 = 0.9,
                double beta2 = 0.999, double epsilon = 1e-7);
  void ApplyGradients(const std::vector<Variable>& variables,
                      const std::vector<Tensor>& gradients) override;

 private:
  double learning_rate_, beta1_, beta2_, epsilon_;
  Variable step_;  // int64-free: float32 scalar step counter
};

}  // namespace models
}  // namespace tfe

#endif  // TFE_MODELS_OPTIMIZERS_H_
