// L2HMC (Levy, Hoffman & Sohl-Dickstein, 2018) — the paper's small-op
// benchmark (§6, Figure 4): a learned Hamiltonian Monte Carlo sampler over a
// 2-dimensional target distribution with a 10-step leapfrog integrator.
//
// The model is a composition of hundreds of *tiny* operations per step, so
// imperative execution is dispatch-bound and staging the update function
// recovers an order of magnitude — exactly the regime Figure 4 probes. The
// host loop over leapfrog steps is fully unrolled by tracing, as the paper
// describes for Python loops (§4.1) — or, with Config::staged_loop, staged
// as a single While node whose body is one cached graph function, so a
// whole training step (forward, While gradient, SGD update) is ONE graph
// whose size no longer grows with leapfrog_steps.
#ifndef TFE_MODELS_L2HMC_H_
#define TFE_MODELS_L2HMC_H_

#include <memory>
#include <vector>

#include "api/tfe.h"
#include "models/mlp.h"

namespace tfe {
namespace models {

// The per-leapfrog learned functions: given (position-like input, momentum-
// like input), produce (scale, translation, transformation), each [n, dim].
// Mirrors the reference implementation's three-headed network.
class L2hmcNetwork : public Checkpointable {
 public:
  L2hmcNetwork(int64_t dim, int64_t hidden, int64_t seed,
               const std::string& name);

  struct Heads {
    Tensor scale;
    Tensor translation;
    Tensor transformation;
  };
  Heads operator()(const Tensor& x, const Tensor& v) const;

  void CollectVariables(std::vector<Variable>* out) const;

 private:
  std::unique_ptr<Dense> input_x_, input_v_, hidden_;
  std::unique_ptr<Dense> scale_head_, translation_head_, transform_head_;
};

class L2hmcDynamics : public Checkpointable {
 public:
  struct Config {
    int64_t dim = 2;
    int64_t hidden = 10;
    int64_t leapfrog_steps = 10;  // the paper's setting
    double step_size = 0.1;
    int64_t seed = 17;
    // Stage the leapfrog integrator as one While node instead of unrolling
    // the host loop into the trace. The loop body is traced once and its
    // execution variant is reused across iterations; differentiating
    // through it uses the While gradient (per-iteration backward replay).
    bool staged_loop = false;
    // When nonzero, the momentum and Metropolis draws use the deterministic
    // Philox streams (sample_seed, sample_seed + 1) instead of the
    // context's stateful stream, making staged-loop and unrolled
    // transitions bitwise-comparable.
    int64_t sample_seed = 0;
  };
  L2hmcDynamics() : L2hmcDynamics(Config()) {}
  explicit L2hmcDynamics(const Config& config);

  // Log-density of the 2-D strongly-correlated Gaussian target.
  Tensor LogProb(const Tensor& x) const;

  struct Proposal {
    Tensor x_out;        // accepted positions [n, dim]
    Tensor accept_prob;  // [n]
  };
  // One full L2HMC transition for a batch of `n` chains: sample momenta,
  // run the learned leapfrog integrator, Metropolis accept/reject.
  Proposal Transition(const Tensor& x) const;

  // The expected-squared-jump-distance training loss of the reference
  // implementation (minimize reciprocal ESJD minus ESJD term).
  Tensor Loss(const Tensor& x) const;

  // One SGD step over the sampler parameters; returns the loss.
  Tensor TrainStep(const Tensor& x, double lr) const;

  std::vector<Variable> variables() const;
  const Config& config() const { return config_; }

 private:
  struct LeapfrogState {
    Tensor x;
    Tensor v;
    Tensor log_jacobian;
  };
  // One learned leapfrog update (v half-step, x full step, v half-step),
  // shared by the unrolled host loop and the staged while_loop body.
  LeapfrogState LeapfrogStep(const LeapfrogState& state) const;

  Config config_;
  std::unique_ptr<L2hmcNetwork> position_net_;
  std::unique_ptr<L2hmcNetwork> momentum_net_;
  // Lazily-built staged-loop functions (Config::staged_loop); mutable so
  // their trace caches persist across const Transition calls.
  mutable std::unique_ptr<Function> leapfrog_cond_;
  mutable std::unique_ptr<Function> leapfrog_body_;
};

}  // namespace models
}  // namespace tfe

#endif  // TFE_MODELS_L2HMC_H_
