// ResNet-50 (He et al., 2016), the paper's large-model benchmark (§6).
//
// Full v1 topology: 7x7/2 stem, 3x3/2 max-pool, four bottleneck stages of
// [3, 4, 6, 3] blocks, global average pool, 1000-way dense head. Built
// purely on the public API so the same code runs eagerly, staged, and on
// the simulated accelerators ("the code used to generate these benchmarks
// all rely on the same Model class; converting the code to use function is
// simply a matter of decorating two functions").
#ifndef TFE_MODELS_RESNET_H_
#define TFE_MODELS_RESNET_H_

#include <memory>
#include <string>
#include <vector>

#include "api/tfe.h"
#include "models/mlp.h"

namespace tfe {
namespace models {

class ConvLayer : public Checkpointable {
 public:
  ConvLayer(int64_t kernel, int64_t in_channels, int64_t out_channels,
            int64_t stride, const std::string& name, int64_t seed);
  Tensor operator()(const Tensor& x) const;
  std::vector<Variable> variables() const { return {filter_}; }

 private:
  Variable filter_;
  std::vector<int64_t> strides_;
};

class BatchNormLayer : public Checkpointable {
 public:
  BatchNormLayer(int64_t channels, const std::string& name);
  // Training mode uses batch statistics and updates the moving averages
  // (staged runs update them through captured resources).
  Tensor operator()(const Tensor& x, bool training) const;
  std::vector<Variable> variables() const { return {scale_, offset_}; }

 private:
  Variable scale_;
  Variable offset_;
  Variable moving_mean_;
  Variable moving_variance_;
};

// 1x1 -> 3x3 -> 1x1 bottleneck with projection shortcut where needed.
class BottleneckBlock : public Checkpointable {
 public:
  BottleneckBlock(int64_t in_channels, int64_t bottleneck_channels,
                  int64_t out_channels, int64_t stride,
                  const std::string& name, int64_t seed);
  Tensor operator()(const Tensor& x, bool training) const;
  void CollectVariables(std::vector<Variable>* out) const;

 private:
  std::unique_ptr<ConvLayer> conv1_, conv2_, conv3_, shortcut_conv_;
  std::unique_ptr<BatchNormLayer> bn1_, bn2_, bn3_, shortcut_bn_;
};

class ResNet50 : public Checkpointable {
 public:
  // `num_classes` and input channels are configurable so tests can build a
  // tiny variant; `blocks_per_stage` defaults to the real [3,4,6,3].
  struct Config {
    int64_t num_classes = 1000;
    int64_t input_channels = 3;
    std::vector<int64_t> blocks_per_stage = {3, 4, 6, 3};
    // Divides all channel counts (tests use 8-16x thinner networks).
    int64_t width_divisor = 1;
    int64_t seed = 42;
  };
  ResNet50() : ResNet50(Config()) {}
  explicit ResNet50(const Config& config);

  // Logits for NHWC input images.
  Tensor operator()(const Tensor& images, bool training) const;

  Tensor Loss(const Tensor& images, const Tensor& labels,
              bool training) const;

  // One SGD training step (forward + backward + update); returns the loss.
  Tensor TrainStep(const Tensor& images, const Tensor& labels,
                   double lr) const;

  std::vector<Variable> variables() const;

 private:
  Config config_;
  std::unique_ptr<ConvLayer> stem_conv_;
  std::unique_ptr<BatchNormLayer> stem_bn_;
  std::vector<std::unique_ptr<BottleneckBlock>> blocks_;
  std::unique_ptr<Dense> head_;
};

}  // namespace models
}  // namespace tfe

#endif  // TFE_MODELS_RESNET_H_
