#include "models/rnn.h"

#include <cmath>

#include "staging/control_flow.h"
#include "support/strings.h"

namespace tfe {
namespace models {

LSTMCell::LSTMCell(int64_t input_size, int64_t hidden_size, int64_t seed,
                   const std::string& name)
    : input_size_(input_size), hidden_size_(hidden_size) {
  double stddev = std::sqrt(1.0 / static_cast<double>(input_size + hidden_size));
  kernel_ = Variable(
      ops::random_normal({input_size + hidden_size, 4 * hidden_size}, 0.0,
                         stddev, seed == 0 ? 23 : seed),
      name + "/kernel");
  bias_ = Variable(ops::zeros(DType::kFloat32, {4 * hidden_size}),
                   name + "/bias");
  TrackVariable("kernel", kernel_);
  TrackVariable("bias", bias_);
}

LSTMCell::State LSTMCell::operator()(const Tensor& x,
                                     const State& state) const {
  Tensor joined = ops::concat({x, state.h}, 1);
  Tensor gates = ops::add(ops::matmul(joined, kernel_.value()),
                          bias_.value());
  const int64_t hidden = hidden_size_;
  auto gate = [&](int64_t index) {
    return ops::slice(gates, {0, index * hidden}, {-1, hidden});
  };
  Tensor input_gate = ops::sigmoid(gate(0));
  Tensor forget_gate = ops::sigmoid(gate(1));
  Tensor candidate = ops::tanh(gate(2));
  Tensor output_gate = ops::sigmoid(gate(3));
  State next;
  next.c = ops::add(ops::mul(forget_gate, state.c),
                    ops::mul(input_gate, candidate));
  next.h = ops::mul(output_gate, ops::tanh(next.c));
  return next;
}

LSTMCell::State LSTMCell::ZeroState(int64_t batch) const {
  State state;
  state.h = ops::zeros(DType::kFloat32, {batch, hidden_size_});
  state.c = ops::zeros(DType::kFloat32, {batch, hidden_size_});
  return state;
}

namespace {

// sequence [batch, time, input] -> timestep t as [batch, input], with `t`
// a runtime int32 scalar (dynamic indexing through Gather).
Tensor TimeStep(const Tensor& sequence, const Tensor& t) {
  // [time, batch, input] then gather row t.
  Tensor time_major = ops::transpose(sequence, {1, 0, 2});
  Tensor index = ops::reshape(ops::cast(t, DType::kInt64), {1});
  Tensor row = ops::gather(time_major, index);  // [1, batch, input]
  return ops::squeeze(row, {0});
}

}  // namespace

Tensor UnrolledRnn(const LSTMCell& cell, const Tensor& sequence) {
  TFE_CHECK_EQ(sequence.shape().rank(), 3);
  const int64_t batch = sequence.shape().dim(0);
  const int64_t time = sequence.shape().dim(1);
  const int64_t input = sequence.shape().dim(2);
  LSTMCell::State state = cell.ZeroState(batch);
  for (int64_t t = 0; t < time; ++t) {
    Tensor x = ops::reshape(
        ops::slice(sequence, {0, t, 0}, {-1, 1, -1}), {batch, input});
    state = cell(x, state);
  }
  return state.h;
}

Tensor DynamicRnn(const LSTMCell& cell, const Tensor& sequence,
                  const Tensor& length) {
  TFE_CHECK_EQ(sequence.shape().rank(), 3);
  const int64_t batch = sequence.shape().dim(0);

  // Loop variables: {t, h, c}; sequence and length ride along as captures.
  Function keep_going = function(
      [length](const std::vector<Tensor>& vars) -> std::vector<Tensor> {
        return {ops::less(vars[0], length)};
      },
      "dynamic_rnn_cond");
  Function step = function(
      [&cell, sequence](const std::vector<Tensor>& vars)
          -> std::vector<Tensor> {
        Tensor x = TimeStep(sequence, vars[0]);
        LSTMCell::State next = cell(x, {vars[1], vars[2]});
        Tensor t_next =
            ops::add(vars[0], ops::fill(DType::kInt32, {}, 1.0));
        return {t_next, next.h, next.c};
      },
      "dynamic_rnn_step");

  LSTMCell::State zero = cell.ZeroState(batch);
  std::vector<Tensor> final_vars = ops::while_loop(
      keep_going, step,
      {ops::fill(DType::kInt32, {}, 0.0), zero.h, zero.c});
  return final_vars[1];
}

}  // namespace models
}  // namespace tfe
