// EagerContext: the imperative runtime (paper §5: "the imperative runtime —
// i.e., the code responsible for constructing and executing operations").
//
// It owns the devices, the function library, the executor thread pool, the
// stateful RNG stream, and the virtual clock used by the simulated
// accelerators. Both stages flow through it: eager ops via RunPrimitive()
// (placement -> transparent input copies -> kernel -> time accounting), and
// staged graph functions via the Call kernel, which re-enters the runtime.
//
// Execution is synchronous by default. With Options::async, primitive ops
// are enqueued on per-device in-order OpQueues and RunPrimitive returns
// pending TensorHandle-backed tensors immediately (paper §5: the runtime
// "can execute operations asynchronously"; the host only blocks at sync
// points — value reads, tape gradient entry, staged calls, Sync()). A failed
// op poisons downstream handles; its Status surfaces at the next sync point
// and Sync() leaves the context reusable.
#ifndef TFE_RUNTIME_EAGER_CONTEXT_H_
#define TFE_RUNTIME_EAGER_CONTEXT_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <unordered_map>

#include "device/device_manager.h"
#include "graph/graph_function.h"
#include "ops/kernel.h"
#include "support/random.h"
#include "support/threadpool.h"

namespace tfe {

class OpQueue;

// Models the host-language dispatch cost per eager operation. `kNative`
// measures the raw C++ runtime; `Python()` injects the CPython-era per-op
// cost the paper measured against (DESIGN.md §2 documents this calibrated
// substitution — it is the only simulated part of the eager path).
struct HostProfile {
  uint64_t per_op_dispatch_ns = 0;   // each eager primitive dispatch
  uint64_t function_call_ns = 0;     // each staged function invocation
                                     // (signature computation, cache lookup)
  static HostProfile Native() { return {0, 0}; }
  // Paper-era CPython + TF-Python-binding dispatch cost per op / per staged
  // call (calibrated against Figures 3 & 4; see EXPERIMENTS.md).
  static HostProfile Python() { return {25'000, 100'000}; }
};

class EagerContext {
 public:
  struct Options {
    bool register_sim_gpu = true;
    bool register_sim_tpu = true;
    // When false, simulated accelerators skip kernel math and produce opaque
    // tensors (timing-only benchmarking mode). CPU always computes.
    bool accelerators_execute_kernels = true;
    HostProfile host_profile = HostProfile::Native();
    uint64_t random_seed = 1234;
    int executor_threads = 0;  // 0 -> hardware concurrency
    // Asynchronous eager dispatch (paper §5): primitive ops enqueue on
    // per-device queues and return pending handles. Off by default — all
    // synchronous semantics (and tests) are unchanged unless opted in.
    bool async = false;
    // Cross-op elementwise fusion: the op-queue drain and the Call kernel
    // collapse runs of shape-compatible elementwise ops into one
    // FusedElementwise kernel (single traversal, bitwise-identical values).
    bool fuse_elementwise = true;
    // Intra-op parallelism: large CPU kernels shard across the dedicated
    // intra-op pool via kernels::ParallelFor. Values are bitwise identical
    // to serial execution (shards never change accumulation order).
    bool intra_op_parallelism = true;
    // Buffer donation: a drain-fused run whose input buffer is uniquely
    // owned (no outstanding handles or tensors, tape not watching) writes
    // its output in place instead of allocating. Values stay bitwise
    // identical; off switches every fused run to the copying path.
    bool buffer_donation = true;
  };

  EagerContext();  // default Options
  explicit EagerContext(const Options& options);
  ~EagerContext();

  EagerContext(const EagerContext&) = delete;
  EagerContext& operator=(const EagerContext&) = delete;

  // The process-default context used by the public API. Created lazily;
  // ResetGlobal replaces it (tests and benchmarks reconfigure this way).
  static EagerContext* Global();
  static void ResetGlobal(const Options& options);

  DeviceManager& devices() { return devices_; }
  Device* HostCpu() const { return host_cpu_; }
  FunctionLibrary& functions() { return functions_; }
  ThreadPool& executor_pool() { return *executor_pool_; }
  // Pool for kernel-internal sharding (kernels::ParallelFor). Distinct from
  // the executor pool so a kernel waiting on its shards can never deadlock
  // against other kernels occupying executor threads.
  ThreadPool& intraop_pool() { return *intraop_pool_; }

  bool fuse_elementwise() const {
    return fuse_elementwise_.load(std::memory_order_relaxed);
  }
  void set_fuse_elementwise(bool fuse) {
    fuse_elementwise_.store(fuse, std::memory_order_relaxed);
  }
  bool intra_op_parallelism() const {
    return intra_op_parallelism_.load(std::memory_order_relaxed);
  }
  void set_intra_op_parallelism(bool parallel) {
    intra_op_parallelism_.store(parallel, std::memory_order_relaxed);
  }
  bool buffer_donation() const {
    return buffer_donation_.load(std::memory_order_relaxed);
  }
  void set_buffer_donation(bool donate) {
    buffer_donation_.store(donate, std::memory_order_relaxed);
  }

  const HostProfile& host_profile() const { return host_profile_; }
  void set_host_profile(const HostProfile& profile) {
    host_profile_ = profile;
  }

  // ---- Async mode ----------------------------------------------------------

  bool async() const { return async_.load(std::memory_order_relaxed); }
  // Toggling async off is itself a sync point (drains the queues first).
  void set_async(bool async);

  // Sync point: drains every per-device op queue, joins the host clock with
  // all device timelines, and surfaces (then clears) the first deferred
  // async error, leaving the context reusable. Also correct, and a no-op, in
  // sync mode.
  Status Sync();

  // Blocks until all per-device queues are empty (no error reporting).
  void WaitQueuesDrained();

  // First-wins record of a failed async op; surfaced by the next Sync().
  void NoteAsyncError(const Status& status);

  // Modelled host<->accelerator transfer time for `bytes` over the
  // PCIe-class interconnect (shared by the sync path and the op queues).
  static uint64_t TransferTimeNs(int64_t bytes);

  // ---- Execution -----------------------------------------------------------

  // Runs one primitive operation imperatively: charges host dispatch cost,
  // resolves placement, copies mismatched inputs, executes (or simulates)
  // the kernel, and advances virtual time. Gradient-tape recording is the
  // dispatcher's job, not ours.
  StatusOr<std::vector<Tensor>> RunPrimitive(
      const std::string& op_name, std::vector<Tensor> inputs,
      const AttrMap& attrs, const std::string& requested_device);

  // Kernel execution shared with the dataflow executor: no placement, no
  // copies, no host-profile charge. `compiled` marks execution inside a
  // whole-function compilation unit (simulated TPU fusion). Returns outputs
  // and the virtual ns the kernel occupies on `device`'s timeline (for the
  // CPU this is measured wall time).
  struct KernelRun {
    std::vector<Tensor> outputs;
    uint64_t device_ns = 0;
    // Set by composite kernels (Call) that schedule device time themselves.
    uint64_t completion_ns = 0;
  };
  // `rng_stream` is the deterministic Philox stream for seed-0 random ops
  // (see KernelContext::rng_stream); 0 leaves the kernel on the shared
  // stateful stream.
  StatusOr<KernelRun> ExecuteKernel(const std::string& op_name,
                                    const std::vector<Tensor>& inputs,
                                    const AttrMap& attrs, Device* device,
                                    bool compiled, uint64_t start_ns,
                                    uint64_t rng_stream = 0);

  // Placement: explicit request > device scope > first input's device (if a
  // kernel exists there) > host CPU. Variable ops stick to the variable's
  // device (paper §4.4).
  StatusOr<Device*> ResolveDevice(const std::string& op_name,
                                  const std::vector<Tensor>& inputs,
                                  const std::string& requested_device);

  // Transparent cross-device copy (paper §4.4: "the runtime transparently
  // copies the inputs to the correct device"). Accounts transfer time.
  StatusOr<Tensor> CopyToDevice(const Tensor& tensor, Device* device);

  // Explicit tensor move (tfe::copy_to): reads the tensor's value — fetching
  // from its worker store when the source is remote — and places it on
  // `device`. Local targets behave like the transparent copy; remote targets
  // ship the value into the target worker's store over the pending-handle
  // protocol and return a remote-backed handle. This is the explicit hop the
  // deferred cross-worker InvalidArgument directs users to: tensors never
  // implicitly move between workers, but copy_to moves them on demand.
  StatusOr<Tensor> CopyTo(const Tensor& tensor, Device* device);

  // ---- Virtual time --------------------------------------------------------

  uint64_t host_now_ns() const {
    return host_now_ns_.load(std::memory_order_relaxed);
  }
  // The virtual host clock itself, for constructing pending handles whose
  // reads join the host timeline (TensorHandle::Pending). Outlives every
  // handle by the usual tensors-don't-outlive-their-context rule.
  std::atomic<uint64_t>* host_clock() { return &host_now_ns_; }
  void AdvanceHostNs(uint64_t ns) {
    host_now_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  // Raises host time to at least `ns` (join with a device timeline).
  void RaiseHostNs(uint64_t ns);
  // Blocks (virtually) until all device work retires, as reading a tensor
  // value would; returns the new host time.
  uint64_t SyncAllDevices();
  // Zeroes all timelines, compile caches, and counters for a fresh
  // measurement window.
  void ResetVirtualTime();

  // ---- Introspection -------------------------------------------------------

  struct Stats {
    std::atomic<uint64_t> eager_ops{0};
    std::atomic<uint64_t> executor_nodes{0};
    std::atomic<uint64_t> function_calls{0};
    std::atomic<uint64_t> traces{0};
    std::atomic<uint64_t> device_copies{0};
    // FusedElementwise invocations / primitive ops folded into them.
    std::atomic<uint64_t> fused_runs{0};
    std::atomic<uint64_t> fused_ops{0};
    // Fused runs whose program was a DAG rather than a linear chain:
    // several published outputs, or an in-run value with several consumers.
    std::atomic<uint64_t> fused_dag_runs{0};
  };
  Stats& stats() { return stats_; }

  // The context-level stateful RNG stream backing seed-0 random ops that
  // were dispatched without an assigned stream (rng_stream == 0).
  random::Philox& rng() { return rng_; }
  std::mutex& rng_mu() { return rng_mu_; }
  // Base seed for the per-op deterministic streams.
  uint64_t random_seed() const { return random_seed_; }
  // Reserves the next deterministic RNG stream id (> 0). Called on
  // dispatching host threads (program order) and once per unbased executor
  // run, so the sequence of reservations is independent of kernel-execution
  // interleaving.
  uint64_t NextRngStream() {
    return rng_stream_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

 private:
  // The per-device in-order queue, created on first async dispatch to the
  // device.
  OpQueue* queue_for(Device* device);
  // Async fast path: infers output metadata, enqueues the op, and returns
  // pending tensors. Returns false (and leaves `outputs` untouched) when the
  // op must take the synchronous path — composite/stateful ops, or shapes
  // that inference cannot pin down without values.
  bool EnqueueAsync(const std::string& op_name,
                    const std::vector<Tensor>& inputs, const AttrMap& attrs,
                    Device* device, std::vector<Tensor>* outputs);

  // ---- Remote dispatch (device->IsRemote(), paper §4.5) --------------------
  // Remote ops always take the pending-handle path regardless of the async
  // flag: the op enqueues on the remote device's OpQueue and returns
  // remote-backed pending tensors immediately; the worker's completion
  // callback resolves (or poisons) them. Ops whose output shapes cannot be
  // pinned down at dispatch fall back to RunRemoteBlocking.
  StatusOr<std::vector<Tensor>> RunRemote(const std::string& op_name,
                                          std::vector<Tensor> inputs,
                                          const AttrMap& attrs, Device* device);
  // Staged-function calls on a remote device: the serialized bundle ships on
  // first use (ship-once, per backend), after which each call is one small
  // request naming the registered function.
  StatusOr<std::vector<Tensor>> RunRemoteCall(std::vector<Tensor> inputs,
                                              const AttrMap& attrs,
                                              Device* device);
  // Synchronous remote execution with worker-assigned output ids: the slow
  // path for ops shape inference cannot handle. Drains the queues first so
  // the request observes every in-flight op's results.
  StatusOr<std::vector<Tensor>> RunRemoteBlocking(const std::string& op_name,
                                                  std::vector<Tensor> inputs,
                                                  const AttrMap& attrs,
                                                  Device* device);
  // Builds the pending remote handles (client-assigned store ids) and
  // enqueues the node on the remote device's queue.
  StatusOr<std::vector<Tensor>> EnqueueRemote(
      const std::string& op_name, std::vector<Tensor> inputs, AttrMap attrs,
      Device* device, const std::vector<TypeAndShape>& output_types);
  // Poisoned-output fabrication for an op whose placement failed on a
  // remote-looking device name: the error defers to the next sync point
  // instead of throwing at dispatch, matching mid-flight worker failures.
  // False when output metadata cannot be inferred (caller reports eagerly).
  bool DeferRemoteError(const std::string& op_name,
                        const std::vector<Tensor>& inputs, const AttrMap& attrs,
                        const Status& error, std::vector<Tensor>* outputs);

  DeviceManager devices_;
  Device* host_cpu_ = nullptr;
  FunctionLibrary functions_;
  std::unique_ptr<ThreadPool> executor_pool_;
  std::unique_ptr<ThreadPool> intraop_pool_;
  std::atomic<bool> fuse_elementwise_{true};
  std::atomic<bool> intra_op_parallelism_{true};
  std::atomic<bool> buffer_donation_{true};
  HostProfile host_profile_;
  std::atomic<uint64_t> host_now_ns_{0};
  Stats stats_;
  std::mutex rng_mu_;
  random::Philox rng_;
  uint64_t random_seed_ = 0;
  std::atomic<uint64_t> rng_stream_counter_{0};

  std::atomic<bool> async_{false};
  std::mutex queues_mu_;
  std::unordered_map<Device*, std::unique_ptr<OpQueue>> queues_;
  std::mutex async_error_mu_;
  Status async_error_;
};

// Scoped device override, the `with tf.device(...)` analog (paper §4.4).
// Thread-local and nestable; an empty name clears the override within the
// scope.
class DeviceScope {
 public:
  explicit DeviceScope(std::string device_name);
  ~DeviceScope();

  DeviceScope(const DeviceScope&) = delete;
  DeviceScope& operator=(const DeviceScope&) = delete;

  // The innermost scope's device name, or "" when unscoped.
  static const std::string& Current();
};

}  // namespace tfe

#endif  // TFE_RUNTIME_EAGER_CONTEXT_H_
