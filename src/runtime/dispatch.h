// Multi-stage dispatch: the single entry point through which every primitive
// operation flows (paper §4.1 / DESIGN.md §5).
//
//   if a trace is active  -> record a node, return symbolic tensors (staging)
//   otherwise             -> execute the kernel now, return concrete tensors
//
// and in both cases the op is offered to the active gradient tapes — which
// is what makes the tape machinery stage-agnostic (§4.2: "gradient
// computation is itself expressed as a function which executes primitive
// operations, so it is possible to stage it or not").
#ifndef TFE_RUNTIME_DISPATCH_H_
#define TFE_RUNTIME_DISPATCH_H_

#include <string>
#include <vector>

#include "ops/attr_value.h"
#include "support/status.h"
#include "tensor/tensor.h"

namespace tfe {

class EagerContext;

struct OpCall {
  std::string op_name;
  std::vector<Tensor> inputs;
  AttrMap attrs;
  // Requested device name; empty defers to the DeviceScope / placement.
  std::string device;
  // Runtime to execute under; nullptr = EagerContext::Global().
  EagerContext* ctx = nullptr;
};

StatusOr<std::vector<Tensor>> Dispatch(OpCall call);

// Convenience for single-output ops; fails if the op has != 1 output.
StatusOr<Tensor> DispatchSingle(OpCall call);

}  // namespace tfe

#endif  // TFE_RUNTIME_DISPATCH_H_
