#include "runtime/op_queue.h"

#include <algorithm>
#include <utility>

#include "device/device.h"
#include "runtime/eager_context.h"
#include "support/threadpool.h"

namespace tfe {

namespace {

// The front node's first input handle that has not resolved yet, or null if
// the node is ready to execute. Handles from this queue are always resolved
// by the time their consumer reaches the front (in-order execution), so this
// only ever parks on cross-device dependencies.
std::shared_ptr<TensorHandle> FirstUnresolvedInput(const OpQueue::Node& node) {
  for (const Tensor& input : node.inputs) {
    const auto& handle = input.pending_handle();
    if (handle != nullptr && !handle->resolved()) return handle;
  }
  return nullptr;
}

}  // namespace

OpQueue::OpQueue(EagerContext* ctx, Device* device)
    : ctx_(ctx), device_(device) {}

void OpQueue::Enqueue(Node node) {
  std::lock_guard<std::mutex> lock(mu_);
  queue_.push_back(std::move(node));
  PumpLocked();
}

void OpQueue::PumpLocked() {
  if (draining_ || parked_ || queue_.empty()) return;
  draining_ = true;
  ctx_->executor_pool().Schedule([this] { Drain(); });
}

void OpQueue::Drain() {
  for (;;) {
    Node* front;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) {
        draining_ = false;
        drained_cv_.notify_all();
        return;
      }
      // Safe to inspect outside the lock: only the single active drain pops,
      // and deque growth does not invalidate the front element.
      front = &queue_.front();
    }
    if (std::shared_ptr<TensorHandle> unresolved = FirstUnresolvedInput(*front)) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        draining_ = false;
        parked_ = true;
      }
      // Park: re-arm the drain when the cross-device dependency resolves.
      // If it resolved between the check above and here, AndThen runs the
      // callback inline and the drain restarts immediately.
      unresolved->AndThen([this] {
        std::lock_guard<std::mutex> lock(mu_);
        parked_ = false;
        PumpLocked();
      });
      return;
    }
    Node node;
    {
      std::lock_guard<std::mutex> lock(mu_);
      node = std::move(queue_.front());
      queue_.pop_front();
    }
    Execute(std::move(node));
  }
}

void OpQueue::Execute(Node node) {
  // Deferred error propagation: a poisoned input poisons every output with
  // the *original* Status, without executing (paper §5 error semantics).
  uint64_t start_ns = node.enqueue_host_ns;
  std::vector<Tensor> inputs;
  inputs.reserve(node.inputs.size());
  for (const Tensor& input : node.inputs) {
    const auto& handle = input.pending_handle();
    if (handle == nullptr) {
      inputs.push_back(input);
      continue;
    }
    Status status = handle->status();
    if (!status.ok()) {
      for (const auto& out : node.outputs) out->SetError(status);
      ctx_->NoteAsyncError(status);
      return;
    }
    start_ns = std::max(start_ns, handle->ready_ns());
    inputs.push_back(handle->tensor());
  }

  auto poison = [&](const Status& status) {
    for (const auto& out : node.outputs) out->SetError(status);
    ctx_->NoteAsyncError(status);
  };

  // Transparent input copies (paper §4.4). Unlike the synchronous path, the
  // transfer cost is charged to the op's device occupancy, not the host —
  // the host already raced ahead.
  uint64_t extra_ns = 0;
  for (Tensor& input : inputs) {
    if (!input.defined() || input.is_resource() || input.is_symbolic()) {
      continue;
    }
    Device* source = input.device() != nullptr ? input.device() : ctx_->HostCpu();
    if (source == device_) continue;
    ctx_->stats().device_copies.fetch_add(1, std::memory_order_relaxed);
    if (source->is_accelerator() || device_->is_accelerator()) {
      extra_ns += EagerContext::TransferTimeNs(
          input.num_elements() * static_cast<int64_t>(DTypeSize(input.dtype())));
    }
    if (input.is_opaque()) {
      input = Tensor::Opaque(input.dtype(), input.shape(), device_);
    } else {
      input = Tensor::Concrete(input.dtype(), input.shape(), input.buffer(),
                               device_);
    }
  }

  // Per-op-signature compile cost (simulated TPU eager mode) also rides on
  // the device occupancy in async mode.
  if (device_->cost_params().per_op_compile_ns > 0) {
    std::string signature = node.op_name;
    for (const Tensor& input : inputs) {
      if (input.defined() && !input.is_resource()) {
        signature += ";" + input.shape().ToString();
      }
    }
    extra_ns += device_->CompileCostNs(signature);
  }

  auto run = ctx_->ExecuteKernel(node.op_name, inputs, node.attrs, device_,
                                 /*compiled=*/false, start_ns);
  if (!run.ok()) {
    poison(run.status());
    return;
  }
  uint64_t done_ns =
      run->completion_ns != 0
          ? run->completion_ns
          : device_->timeline().Schedule(start_ns, extra_ns + run->device_ns);

  if (run->outputs.size() != node.outputs.size()) {
    poison(Internal("Async op " + node.op_name + " produced " +
                    std::to_string(run->outputs.size()) + " outputs, expected " +
                    std::to_string(node.outputs.size())));
    return;
  }
  for (size_t i = 0; i < node.outputs.size(); ++i) {
    node.outputs[i]->SetTensor(std::move(run->outputs[i]), done_ns);
  }
}

void OpQueue::WaitDrained() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] { return queue_.empty() && !draining_; });
}

size_t OpQueue::pending_ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace tfe
