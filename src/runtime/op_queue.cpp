#include "runtime/op_queue.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "device/device.h"
#include "device/remote_device.h"
#include "kernels/fused_elementwise.h"
#include "kernels/program_cache.h"
#include "runtime/eager_context.h"
#include "support/strings.h"
#include "support/threadpool.h"

namespace tfe {

namespace {

// The front node's first input handle that has not resolved yet, or null if
// the node is ready to execute. Handles from this queue are always resolved
// by the time their consumer reaches the front (in-order execution), so this
// only ever parks on cross-device dependencies. A remote queue additionally
// skips unresolved handles living on its own device: the worker's in-order
// service queue guarantees the producing request lands before the consuming
// one, so the consumer can pass the producer's store id without waiting —
// parking here would serialize exactly the chain the pending-handle protocol
// exists to overlap.
std::shared_ptr<TensorHandle> FirstUnresolvedInput(const OpQueue::Node& node,
                                                   const Device* device) {
  for (const Tensor& input : node.inputs) {
    const auto& handle = input.pending_handle();
    if (handle == nullptr) continue;
    if (device->IsRemote() && handle->remote_info() != nullptr &&
        handle->device() == device) {
      continue;
    }
    if (!handle->resolved()) return handle;
  }
  return nullptr;
}

// Longest run of elementwise ops one fused kernel invocation will absorb.
// Bounds the peek-ahead work per drain step and the register footprint of
// the interpreted program.
constexpr size_t kMaxFusedRun = 64;

// How many non-joining queued nodes the DAG capture scan will step over
// while looking for more members. Bounds the per-drain scan (and the deque
// middle-erase cost) when the queue is deep.
constexpr size_t kMaxPeekSkip = 128;

// What role a node plays inside a fused run: a compute member contributes a
// micro-op instruction, a layout member (Transpose/Reshape/ExpandDims/
// Squeeze) folds into operand access descriptors, and a reduce member
// (Sum/Mean/Max/Min over trailing axes) terminates the run as its epilogue.
enum class MemberKind { kCompute, kLayout, kReduce };

struct MemberClass {
  MemberKind kind = MemberKind::kCompute;
  kernels::MicroOpCode code = kernels::MicroOpCode::kAdd;  // kCompute only
};

// Structural half of fusability: a single output whose dtype the interpreter
// supports, and exactly the attrs the run compiler knows how to fold (Cast's
// "dst", Transpose's "perm", a reduction's "axis"/"keep_dims", ...).
// Value/shape checks are the caller's job.
bool FusableNode(const OpQueue::Node& node, MemberClass* cls) {
  if (node.outputs.size() != 1) return false;
  const DType dtype = node.outputs[0]->dtype();
  if (kernels::MicroOpCodeFor(node.op_name, &cls->code)) {
    cls->kind = MemberKind::kCompute;
    if (cls->code == kernels::MicroOpCode::kCast) {
      if (node.attrs.size() != 1 || node.attrs.count("dst") == 0) return false;
    } else if (!node.attrs.empty()) {
      return false;
    }
    return kernels::MicroOpSupports(cls->code, dtype);
  }
  if (kernels::MicroLayoutOp(node.op_name)) {
    cls->kind = MemberKind::kLayout;
    if (node.op_name == "Transpose") {
      auto it = node.attrs.find("perm");
      if (node.attrs.size() != 1 || it == node.attrs.end() ||
          !it->second.Is<std::vector<int64_t>>()) {
        return false;
      }
    } else if (node.op_name == "Reshape") {
      if (node.attrs.size() != 1 || node.attrs.count("shape") == 0) {
        return false;
      }
    } else if (node.op_name == "ExpandDims") {
      if (node.attrs.size() != 1 || node.attrs.count("axis") == 0) {
        return false;
      }
    } else {  // Squeeze: "axis" is optional
      if (!node.attrs.empty() &&
          (node.attrs.size() != 1 || node.attrs.count("axis") == 0)) {
        return false;
      }
    }
    // The interpreter is numeric-typed; layout members only ride along for
    // dtypes it can hold in registers (kCast support == "is numeric").
    return kernels::MicroOpSupports(kernels::MicroOpCode::kCast, dtype);
  }
  kernels::MicroReduceKind rkind;
  if (kernels::MicroReduceKindFor(node.op_name, &rkind)) {
    cls->kind = MemberKind::kReduce;
    for (const auto& [name, value] : node.attrs) {
      if (name != "axis" && name != "keep_dims") return false;
    }
    auto it = node.attrs.find("axis");
    if (it != node.attrs.end() && !it->second.Is<std::vector<int64_t>>()) {
      return false;
    }
    return kernels::MicroOpSupports(kernels::MicroOpCode::kCast, dtype);
  }
  return false;
}

// Resolves an external (not produced in-run) input to its concrete value.
// False when the input is unresolved, poisoned, or not plain data.
bool ResolvedOperand(const Tensor& input, Tensor* value) {
  const auto& handle = input.pending_handle();
  // Remote values are copy-on-read: "resolved" only means the worker posted
  // completion, and touching the placeholder would trigger (or race) the
  // fetch. Never fuse through them.
  if (handle != nullptr && handle->remote_info() != nullptr) return false;
  if (handle == nullptr) {
    *value = input;
  } else {
    if (!handle->resolved() || !handle->status().ok()) return false;
    *value = handle->tensor();
  }
  return value->defined() && !value->is_symbolic() && !value->is_resource() &&
         !value->is_opaque();
}

// Whether `value` can feed a fused compute member of the given dtype/shape
// on `device` without a transparent copy: dtype matches (a cast's source
// operand may instead be any numeric dtype — the kernel pre-converts it), it
// broadcasts to the member's shape under trailing-dim alignment (which
// covers the member shape itself, bias rows, and scalars), and it is already
// resident (nullptr means host data, which the host CPU reads in place).
bool OperandCompatible(const Tensor& value, DType dtype, const Shape& shape,
                       const Device* device, bool cast_source = false) {
  if (cast_source) {
    if (!kernels::MicroOpSupports(kernels::MicroOpCode::kCast, value.dtype())) {
      return false;
    }
  } else if (value.dtype() != dtype) {
    return false;
  }
  if (value.device() != nullptr && value.device() != device) return false;
  return value.num_elements() == 1 ||
         kernels::BroadcastsTo(value.shape(), shape);
}

// Whether run node `n`'s output can be observed outside the run. False only
// when provably every reference to the handle — and to the tensor state
// wrapping it — is an input slot of a later node in the run, i.e. the caller
// dropped its tensor and only the fuser holds the value. Use counts are racy
// the same way shared_ptr::use_count is, but stale counts only err high, so
// races resolve toward materializing (the safe direction).
bool Observable(size_t n, const std::vector<OpQueue::Node>& run) {
  const auto& handle = run[n].outputs[0];
  const long handle_refs = handle.use_count();
  if (handle_refs <= 1) return false;  // only run[n].outputs itself
  if (handle_refs > 2) return true;    // several tensor states hold it
  // Exactly one tensor state holds the handle. Locate it among the later
  // in-run input slots; if found, it is unobservable iff those slots account
  // for every tensor sharing the state.
  const Tensor* holder = nullptr;
  long in_run_state_refs = 0;
  for (size_t m = n + 1; m < run.size(); ++m) {
    for (const Tensor& input : run[m].inputs) {
      if (input.pending_handle().get() == handle.get()) {
        holder = &input;
        ++in_run_state_refs;
      }
    }
  }
  if (holder == nullptr) return true;  // held outside the run
  return holder->state_use_count() != in_run_state_refs;
}

}  // namespace

OpQueue::OpQueue(EagerContext* ctx, Device* device)
    : ctx_(ctx),
      device_(device),
      enqueued_counter_(profiler::Metrics().GetCounter("queue.enqueued")),
      depth_gauge_(
          profiler::Metrics().GetGauge("queue.depth." + device->name())),
      run_length_hist_(
          profiler::Metrics().GetHistogram("fusion.run_length")),
      dispatch_latency_hist_(profiler::Metrics().GetHistogram(
          "queue.dispatch_to_execute_ns")),
      drain_name_id_(profiler::Intern("drain " + device->name())),
      fusion_name_id_(profiler::Intern("fused_run")) {}

void OpQueue::Enqueue(Node node) {
  enqueued_counter_->Increment();
  uint32_t name_id = 0;
  if (profiler::enabled()) {
    node.enqueue_wall_ns = profiler::NowNs();
    name_id = profiler::Intern(node.op_name);
  }
  size_t depth;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(node));
    depth = queue_.size();
    PumpLocked();
  }
  depth_gauge_->Set(static_cast<int64_t>(depth));
  if (name_id != 0) {
    profiler::RecordInstant(profiler::EventKind::kEnqueue, name_id,
                            static_cast<int64_t>(depth));
  }
}

void OpQueue::PumpLocked() {
  if (draining_ || parked_ || queue_.empty()) return;
  draining_ = true;
  ctx_->executor_pool().Schedule([this] { Drain(); });
}

void OpQueue::Drain() {
  profiler::Scope drain_span(profiler::EventKind::kQueueDrain, drain_name_id_);
  int64_t ops_drained = 0;
  for (;;) {
    Node* front;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) {
        draining_ = false;
        drained_cv_.notify_all();
        return;
      }
      // Safe to inspect outside the lock: only the single active drain pops,
      // and deque growth does not invalidate the front element.
      front = &queue_.front();
    }
    if (std::shared_ptr<TensorHandle> unresolved =
            FirstUnresolvedInput(*front, device_)) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        draining_ = false;
        parked_ = true;
      }
      // Park: re-arm the drain when the cross-device dependency resolves.
      // If it resolved between the check above and here, AndThen runs the
      // callback inline and the drain restarts immediately.
      unresolved->AndThen([this] {
        std::lock_guard<std::mutex> lock(mu_);
        parked_ = false;
        PumpLocked();
      });
      return;
    }
    std::vector<Node> run;
    size_t depth;
    {
      std::lock_guard<std::mutex> lock(mu_);
      run.push_back(std::move(queue_.front()));
      queue_.pop_front();
      // Peek ahead: absorb the largest fusable map-reduce DAG segment behind
      // the front. Members are popped together so the segment executes as
      // one kernel; the scan steps over ("skips") queued nodes that do not
      // join, so a non-fusable op interleaved in a diamond no longer cuts
      // the run. Reordering members ahead of skipped nodes is safe: a
      // member's inputs are all resolved or produced in-run (a consumer of a
      // skipped node's output fails ResolvedOperand and cannot join), ops
      // with effects (variable writes) are never fusable, RNG streams are
      // pinned at dispatch, and skipped nodes that consume a member's output
      // see its handle resolve when the fused kernel completes.
      if (NodeStartsRun(run.front())) {
        size_t scan = 0;
        kernels::MicroReduceKind close_kind;
        while (run.size() < kMaxFusedRun && scan < queue_.size() &&
               scan < kMaxPeekSkip) {
          if (NodeJoinsRun(queue_[scan], run)) {
            run.push_back(std::move(queue_[scan]));
            queue_.erase(queue_.begin() +
                         static_cast<std::ptrdiff_t>(scan));
            // A reduce epilogue closes the run; stop scanning.
            if (kernels::MicroReduceKindFor(run.back().op_name, &close_kind)) {
              break;
            }
          } else {
            ++scan;
          }
        }
        // The evaluation space is the last member's shape, so a scalar tail
        // in a non-scalar run would shrink it to one element and fail to
        // compile. Hand such tails back; the next iteration runs them alone.
        // (A scalar *reduction* tail is exempt: its epilogue evaluates over
        // the producer's shape.)
        kernels::MicroReduceKind tail_kind;
        while (run.size() > 1 &&
               run.back().outputs[0]->shape().num_elements() == 1 &&
               !kernels::MicroReduceKindFor(run.back().op_name, &tail_kind)) {
          int64_t prefix_count = 1;
          for (size_t i = 0; i + 1 < run.size(); ++i) {
            prefix_count = std::max(
                prefix_count, run[i].outputs[0]->shape().num_elements());
          }
          if (prefix_count == 1) break;  // all-scalar run: fine as is
          queue_.push_front(std::move(run.back()));
          run.pop_back();
        }
      }
      depth = queue_.size();
    }
    depth_gauge_->Set(static_cast<int64_t>(depth));
    run_length_hist_->Record(run.size());
    ops_drained += static_cast<int64_t>(run.size());
    drain_span.set_arg(ops_drained);
    if (run.size() > 1) {
      profiler::RecordInstant(profiler::EventKind::kFusionRun, fusion_name_id_,
                              static_cast<int64_t>(run.size()));
    }
    if (run.size() == 1) {
      Execute(std::move(run.front()));
    } else {
      ExecuteFused(std::move(run));
    }
  }
}

bool OpQueue::NodeStartsRun(const Node& node) const {
  if (!ctx_->fuse_elementwise()) return false;
  // Fuse only where the kernel actually computes: simulated accelerators are
  // virtual-time devices and fusing would perturb their cost model.
  if (device_->is_accelerator() || !device_->executes_kernels()) return false;
  MemberClass cls;
  if (!FusableNode(node, &cls)) return false;
  // A reduction only terminates a run — alone it IS the standalone kernel.
  if (cls.kind == MemberKind::kReduce) return false;
  const auto& out = *node.outputs[0];
  if (!out.shape().IsFullyDefined()) return false;
  if (cls.kind == MemberKind::kLayout) {
    if (node.inputs.size() != 1) return false;
    Tensor value;
    if (!ResolvedOperand(node.inputs[0], &value)) return false;
    // Layout members never cast or broadcast: same dtype, same element
    // count, already resident.
    return value.dtype() == out.dtype() &&
           (value.device() == nullptr || value.device() == device_) &&
           value.num_elements() == out.shape().num_elements();
  }
  const bool cast_source = cls.code == kernels::MicroOpCode::kCast;
  for (const Tensor& input : node.inputs) {
    Tensor value;
    if (!ResolvedOperand(input, &value)) return false;
    if (!OperandCompatible(value, out.dtype(), out.shape(), device_,
                           cast_source)) {
      return false;
    }
  }
  return true;
}

bool OpQueue::NodeJoinsRun(const Node& node,
                           const std::vector<Node>& run) const {
  // A reduction closes the run; nothing fuses behind its epilogue.
  kernels::MicroReduceKind tail_kind;
  if (kernels::MicroReduceKindFor(run.back().op_name, &tail_kind)) {
    return false;
  }
  MemberClass cls;
  if (!FusableNode(node, &cls)) return false;
  const DType run_dtype = run.front().outputs[0]->dtype();
  const auto& out = *node.outputs[0];
  if (out.dtype() != run_dtype || !out.shape().IsFullyDefined()) return false;

  // The run's evaluation count so far. Members are scalar or share one
  // count, so the maximum is that count.
  int64_t run_count = 1;
  for (const Node& prev : run) {
    run_count =
        std::max(run_count, prev.outputs[0]->shape().num_elements());
  }

  auto producer_of = [&](const Tensor& input) -> const Node* {
    const auto& handle = input.pending_handle();
    if (handle == nullptr) return nullptr;
    for (const Node& prev : run) {
      if (prev.outputs[0] == handle) return &prev;
    }
    return nullptr;
  };

  if (cls.kind == MemberKind::kReduce) {
    // A reduce epilogue folds an in-run value of the full evaluation count
    // over a trailing block of axes; anything else stays standalone rather
    // than dragging the whole run into the op-at-a-time fallback.
    if (node.inputs.size() != 1) return false;
    const Node* producer = producer_of(node.inputs[0]);
    if (producer == nullptr) return false;
    const Shape& in_shape = producer->outputs[0]->shape();
    if (in_shape.num_elements() != run_count) return false;
    std::vector<int64_t> axes;
    auto it = node.attrs.find("axis");
    if (it != node.attrs.end()) axes = it->second.Get<std::vector<int64_t>>();
    const int rank = in_shape.rank();
    std::vector<bool> reduced(rank, axes.empty());
    for (int64_t axis : axes) {
      if (axis < 0) axis += rank;
      if (axis < 0 || axis >= rank) return false;
      reduced[axis] = true;
    }
    bool seen = false;
    for (bool r : reduced) {
      if (r) {
        seen = true;
      } else if (seen) {
        return false;  // non-trailing reduction
      }
    }
    return true;
  }

  const int64_t count = out.shape().num_elements();
  if (count != run_count && count != 1 && run_count != 1) return false;

  if (cls.kind == MemberKind::kLayout) {
    if (node.inputs.size() != 1) return false;
    if (producer_of(node.inputs[0]) != nullptr) return true;
    Tensor value;
    if (!ResolvedOperand(node.inputs[0], &value)) return false;
    return value.dtype() == run_dtype &&
           (value.device() == nullptr || value.device() == device_) &&
           value.num_elements() == count;
  }

  const bool cast_source = cls.code == kernels::MicroOpCode::kCast;
  for (const Tensor& input : node.inputs) {
    if (producer_of(input) != nullptr) continue;
    Tensor value;
    if (!ResolvedOperand(input, &value)) return false;
    if (!OperandCompatible(value, run_dtype, out.shape(), device_,
                           cast_source)) {
      return false;
    }
  }
  return true;
}

void OpQueue::ExecuteFused(std::vector<Node> run) {
  if (profiler::enabled()) {
    const uint64_t now_ns = profiler::NowNs();
    for (const Node& node : run) {
      if (node.enqueue_wall_ns != 0 && node.enqueue_wall_ns <= now_ns) {
        dispatch_latency_hist_->Record(now_ns - node.enqueue_wall_ns);
      }
    }
  }
  const DType dtype = run.front().outputs[0]->dtype();

  // Describe the run to the compiler shared with the static graph pass.
  // Pass 1 resolves each member's args: external operands deduplicate into
  // `operands`; in-run values reference their producing member.
  std::vector<kernels::FusedRunOp> ops(run.size());
  std::vector<Tensor> operands;
  std::vector<kernels::FusedRunOperand> operand_descs;
  std::unordered_map<const TensorHandle*, int> produced;
  uint64_t start_ns = 0;
  bool ok = true;
  const bool donation_enabled = ctx_->buffer_donation();
  for (size_t n = 0; ok && n < run.size(); ++n) {
    const Node& node = run[n];
    start_ns = std::max(start_ns, node.enqueue_host_ns);
    kernels::FusedRunOp& op = ops[n];
    op.op = node.op_name;
    op.dtype = node.outputs[0]->dtype();
    op.shape = node.outputs[0]->shape();
    if (node.op_name == "Transpose") {
      auto it = node.attrs.find("perm");
      if (it == node.attrs.end() || !it->second.Is<std::vector<int64_t>>()) {
        ok = false;
        break;
      }
      op.perm = it->second.Get<std::vector<int64_t>>();
    }
    kernels::MicroReduceKind rkind;
    if (kernels::MicroReduceKindFor(node.op_name, &rkind)) {
      auto it = node.attrs.find("axis");
      if (it != node.attrs.end()) {
        if (!it->second.Is<std::vector<int64_t>>()) {
          ok = false;
          break;
        }
        op.axes = it->second.Get<std::vector<int64_t>>();
      }
    }
    for (const Tensor& input : node.inputs) {
      const auto& handle = input.pending_handle();
      if (handle != nullptr) {
        auto it = produced.find(handle.get());
        if (it != produced.end()) {
          op.args.push_back({/*producer=*/it->second, /*operand=*/-1});
          continue;
        }
      }
      Tensor value;
      if (!ResolvedOperand(input, &value)) {
        ok = false;  // raced from eligible to surprising: fall back
        break;
      }
      if (handle != nullptr) start_ns = std::max(start_ns, handle->ready_ns());
      int index = -1;
      for (size_t i = 0; i < operands.size(); ++i) {
        if (operands[i] == value) {
          index = static_cast<int>(i);
          break;
        }
      }
      if (index < 0) {
        // Donation: offer this operand's buffer as an in-place output when
        // it is provably exclusive — `input` (this run slot, alive until the
        // kernel returns) is the only tensor state wrapping the producing
        // handle, nothing else holds the handle, its resolved value, or its
        // buffer. A tape-watched or user-aliased value fails these counts
        // (TapeEntry and aliases hold whole Tensors). Counts are racy the
        // same way Observable's are, but external references can only be
        // created from existing external references, so a stale count only
        // errs high and races resolve toward copying (the safe direction).
        bool may_donate = false;
        if (donation_enabled && handle != nullptr && value.dtype() == dtype &&
            (value.device() == nullptr || value.device() == device_)) {
          may_donate = handle.use_count() == 1 &&
                       input.state_use_count() == 1 &&
                       value.state_use_count() == 2 &&  // handle's + `value`
                       value.buffer().use_count() == 1;
        }
        index = static_cast<int>(operands.size());
        operand_descs.push_back({value.dtype(), value.shape(), may_donate});
        operands.push_back(std::move(value));
      }
      op.args.push_back({/*producer=*/-1, /*operand=*/index});
    }
    produced[node.outputs[0].get()] = static_cast<int>(n);
  }

  // Materialize exactly the outputs something outside the run can still
  // observe (the last node's always is — it is the run's result), then
  // compile. Compilation rejects layout conflicts and other patterns the
  // join rules cannot see; those runs execute op-at-a-time.
  std::vector<bool> materialize(run.size(), false);
  kernels::CompiledRun compiled;
  if (ok) {
    for (size_t n = 0; n < run.size(); ++n) {
      materialize[n] = n + 1 == run.size() || Observable(n, run);
      ops[n].materialize = materialize[n];
    }
    // Steady-state steps recognize the same DAG segment every iteration;
    // the program cache keys on the segment's shape/dtype signature and
    // returns the compiled artifact (or the cached rejection) without
    // re-running trial compilation.
    auto compiled_or = kernels::FusedProgramCache::Global().GetOrCompile(
        ops, operand_descs, dtype);
    if (compiled_or.ok()) {
      compiled = std::move(*compiled_or);
    } else {
      ok = false;
    }
  }

  if (!ok) {
    // Surprise during program construction — execute the run op-at-a-time,
    // which preserves exact per-node error semantics.
    for (Node& node : run) Execute(std::move(node));
    return;
  }

  auto poison = [&](const Status& status) {
    for (const Node& node : run) {
      for (const auto& out : node.outputs) out->SetError(status);
    }
    ctx_->NoteAsyncError(status);
  };

  AttrMap attrs;
  attrs.emplace("program", AttrValue(compiled.program.Encode()));
  // Extended programs may read operands under layout maps or foreign dtypes,
  // so the run dtype is always explicit.
  attrs.emplace("dtype", AttrValue(dtype));
  bool any_donation = false;
  for (int d : compiled.donations) any_donation |= d >= 0;
  if (any_donation) {
    attrs.emplace("donate",
                  AttrValue(std::vector<int64_t>(compiled.donations.begin(),
                                                 compiled.donations.end())));
  }
  auto result = ctx_->ExecuteKernel("FusedElementwise", operands, attrs,
                                    device_, /*compiled=*/false, start_ns);
  if (!result.ok()) {
    poison(result.status());
    return;
  }
  const uint64_t done_ns =
      device_->timeline().Schedule(start_ns, result->device_ns);
  if (result->outputs.size() != compiled.output_members.size()) {
    poison(Internal("FusedElementwise produced " +
                    std::to_string(result->outputs.size()) +
                    " outputs, expected " +
                    std::to_string(compiled.output_members.size())));
    return;
  }
  // Every handle in the run resolves at the same completion time; elided
  // intermediates resolve to opaque placeholders of their own shape (nobody
  // can read them).
  for (size_t k = 0; k < compiled.output_members.size(); ++k) {
    run[compiled.output_members[k]].outputs[0]->SetTensor(
        std::move(result->outputs[k]), done_ns);
  }
  for (size_t n = 0; n < run.size(); ++n) {
    if (materialize[n]) continue;
    const auto& out = run[n].outputs[0];
    out->SetTensor(Tensor::Opaque(out->dtype(), out->shape(), device_),
                   done_ns);
  }
}

void OpQueue::Execute(Node node) {
  if (device_->IsRemote()) {
    ExecuteRemote(std::move(node));
    return;
  }
  if (node.enqueue_wall_ns != 0 && profiler::enabled()) {
    const uint64_t now_ns = profiler::NowNs();
    if (node.enqueue_wall_ns <= now_ns) {
      dispatch_latency_hist_->Record(now_ns - node.enqueue_wall_ns);
    }
  }
  // Deferred error propagation: a poisoned input poisons every output with
  // the *original* Status, without executing (paper §5 error semantics).
  uint64_t start_ns = node.enqueue_host_ns;
  std::vector<Tensor> inputs;
  inputs.reserve(node.inputs.size());
  for (const Tensor& input : node.inputs) {
    const auto& handle = input.pending_handle();
    if (handle == nullptr) {
      inputs.push_back(input);
      continue;
    }
    Status status = handle->status();
    if (!status.ok()) {
      for (const auto& out : node.outputs) out->SetError(status);
      ctx_->NoteAsyncError(status);
      return;
    }
    if (handle->remote_info() != nullptr) {
      // Copy-on-read: a local op consuming a remote tensor pulls the value
      // from the worker store here (WaitReady performs the one-shot fetch —
      // the drain already confirmed the handle resolved, so this only blocks
      // on the fetch RPC itself).
      status = handle->WaitReady();
      if (!status.ok()) {
        for (const auto& out : node.outputs) out->SetError(status);
        ctx_->NoteAsyncError(status);
        return;
      }
    }
    start_ns = std::max(start_ns, handle->ready_ns());
    inputs.push_back(handle->tensor());
  }

  auto poison = [&](const Status& status) {
    for (const auto& out : node.outputs) out->SetError(status);
    ctx_->NoteAsyncError(status);
  };

  // Transparent input copies (paper §4.4). Unlike the synchronous path, the
  // transfer cost is charged to the op's device occupancy, not the host —
  // the host already raced ahead.
  uint64_t extra_ns = 0;
  for (Tensor& input : inputs) {
    if (!input.defined() || input.is_resource() || input.is_symbolic()) {
      continue;
    }
    Device* source = input.device() != nullptr ? input.device() : ctx_->HostCpu();
    if (source == device_) continue;
    ctx_->stats().device_copies.fetch_add(1, std::memory_order_relaxed);
    if (source->is_accelerator() || device_->is_accelerator()) {
      extra_ns += EagerContext::TransferTimeNs(
          input.num_elements() * static_cast<int64_t>(DTypeSize(input.dtype())));
    }
    if (input.is_opaque()) {
      input = Tensor::Opaque(input.dtype(), input.shape(), device_);
    } else {
      input = Tensor::Concrete(input.dtype(), input.shape(), input.buffer(),
                               device_);
    }
  }

  // Per-op-signature compile cost (simulated TPU eager mode) also rides on
  // the device occupancy in async mode.
  if (device_->cost_params().per_op_compile_ns > 0) {
    std::string signature = node.op_name;
    for (const Tensor& input : inputs) {
      if (input.defined() && !input.is_resource()) {
        signature += ";" + input.shape().ToString();
      }
    }
    extra_ns += device_->CompileCostNs(signature);
  }

  // Op-at-a-time buffer donation: the fused-run use-count proof applied to a
  // single elementwise op. When an input is provably the last reference to
  // its value — no other handle holders, tensor states, or buffer aliases
  // (tape entries and user aliases hold whole Tensors and fail the counts) —
  // ask the kernel to write its output in place. Binary ops may take the
  // donation from either operand, but only one whose shape equals the
  // output's: a broadcasting operand's buffer is too small, and an
  // exact-shape donor reads element i immediately before the loop writes
  // element i, so aliasing is safe even when the other operand broadcasts
  // (it lives in a different buffer — a shared buffer fails the counts).
  // The kernels re-validate dtype/shape and allocate fresh otherwise.
  if (ctx_->buffer_donation() && !device_->is_accelerator() &&
      device_->executes_kernels() && node.attrs.empty() &&
      node.inputs.size() == inputs.size() &&
      (inputs.size() == 1 || inputs.size() == 2) && node.outputs.size() == 1) {
    kernels::MicroOpCode code;
    if (kernels::MicroOpCodeFor(node.op_name, &code) &&
        kernels::MicroOpArity(code) == static_cast<int>(inputs.size()) &&
        code != kernels::MicroOpCode::kCast) {
      for (size_t i = 0; i < inputs.size(); ++i) {
        const auto& handle = node.inputs[i].pending_handle();
        const Tensor& value = inputs[i];
        if (handle != nullptr && value.defined() && !value.is_opaque() &&
            !value.is_resource() &&
            value.dtype() == node.outputs[0]->dtype() &&
            value.shape() == node.outputs[0]->shape() &&
            handle.use_count() == 1 &&
            node.inputs[i].state_use_count() == 1 &&
            value.state_use_count() == 2 &&  // handle's + `inputs[i]`
            value.buffer().use_count() == 1) {
          node.attrs.emplace("donate", AttrValue(static_cast<int64_t>(i)));
          break;
        }
      }
    }
  }

  auto run = ctx_->ExecuteKernel(node.op_name, inputs, node.attrs, device_,
                                 /*compiled=*/false, start_ns,
                                 node.rng_stream);
  if (!run.ok()) {
    poison(run.status());
    return;
  }
  uint64_t done_ns =
      run->completion_ns != 0
          ? run->completion_ns
          : device_->timeline().Schedule(start_ns, extra_ns + run->device_ns);

  if (run->outputs.size() != node.outputs.size()) {
    poison(Internal("Async op " + node.op_name + " produced " +
                    std::to_string(run->outputs.size()) + " outputs, expected " +
                    std::to_string(node.outputs.size())));
    return;
  }
  for (size_t i = 0; i < node.outputs.size(); ++i) {
    node.outputs[i]->SetTensor(std::move(run->outputs[i]), done_ns);
  }
}

void OpQueue::ExecuteRemote(Node node) {
  if (node.enqueue_wall_ns != 0 && profiler::enabled()) {
    const uint64_t now_ns = profiler::NowNs();
    if (node.enqueue_wall_ns <= now_ns) {
      dispatch_latency_hist_->Record(now_ns - node.enqueue_wall_ns);
    }
  }
  auto* remote = static_cast<RemoteDevice*>(device_);
  std::shared_ptr<RemoteBackend> backend = remote->shared_backend();

  auto poison = [&](const Status& status) {
    for (const auto& out : node.outputs) out->SetError(status);
    ctx_->NoteAsyncError(status);
  };

  // Assemble a worker-store id per input. Same-worker remote inputs pass by
  // id (their producing request is already ahead of ours in the worker's
  // in-order queue); local values ship to fresh temp ids first.
  std::vector<int64_t> input_ids;
  std::vector<int64_t> temp_ids;
  input_ids.reserve(node.inputs.size());
  for (const Tensor& input : node.inputs) {
    const auto& handle = input.pending_handle();
    const TensorHandle::RemoteInfo* rinfo =
        handle != nullptr ? handle->remote_info() : nullptr;
    if (rinfo != nullptr) {
      // Deferred error propagation: a poisoned remote producer poisons this
      // op's outputs with the *original* status, no RPC issued.
      if (handle->resolved() && !handle->status().ok()) {
        poison(handle->status());
        return;
      }
      if (handle->device() != device_ &&
          static_cast<RemoteDevice*>(rinfo->device)->shared_backend().get() !=
              backend.get()) {
        poison(InvalidArgument(strings::StrCat(
            "Remote op ", node.op_name, " on ", device_->name(),
            " takes an input living on ", rinfo->device->name(),
            ", a different worker; tensors do not implicitly hop between "
            "workers — move it explicitly with tfe::copy_to")));
        return;
      }
      input_ids.push_back(rinfo->handle_id);
      continue;
    }
    if (handle != nullptr) {
      Status status = handle->status();
      if (!status.ok()) {
        poison(status);
        return;
      }
    }
    Tensor value = handle != nullptr ? handle->tensor() : input;
    if (!value.defined() || value.is_symbolic() || value.is_resource() ||
        value.is_opaque()) {
      poison(InvalidArgument(strings::StrCat(
          "Remote op ", node.op_name, " on ", device_->name(),
          " takes an input that is not a concrete value tensor")));
      return;
    }
    const int64_t temp_id = backend->AllocateHandleId();
    backend->PutAsync(std::move(value), temp_id);
    input_ids.push_back(temp_id);
    temp_ids.push_back(temp_id);
  }

  // The pending-handle protocol: outputs execute under the client-assigned
  // store ids baked into the handles at dispatch time.
  std::vector<int64_t> output_ids;
  output_ids.reserve(node.outputs.size());
  for (const auto& out : node.outputs) {
    TFE_CHECK(out->remote_info() != nullptr);
    output_ids.push_back(out->remote_info()->handle_id);
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++inflight_;
  }
  auto done = [this, backend, outputs = node.outputs, temp_ids,
               op_name = node.op_name](
                  StatusOr<std::vector<RemoteOutputMeta>> metas) {
    {
      profiler::Scope resolve_span(profiler::EventKind::kRemoteResolve,
                                   "remote_resolve");
      if (resolve_span.active()) {
        resolve_span.set_detail(profiler::Intern(op_name));
      }
      if (!metas.ok()) {
        for (const auto& out : outputs) out->SetError(metas.status());
        ctx_->NoteAsyncError(metas.status());
      } else if (metas->size() != outputs.size()) {
        Status status = Internal(strings::StrCat(
            "Remote op ", op_name, " produced ", metas->size(),
            " outputs, expected ", outputs.size()));
        for (const auto& out : outputs) out->SetError(status);
        ctx_->NoteAsyncError(status);
      } else {
        // Values stay on the worker: handles resolve to opaque placeholders
        // and the first local read fetches (TensorHandle copy-on-read).
        for (size_t i = 0; i < outputs.size(); ++i) {
          const RemoteOutputMeta& meta = (*metas)[i];
          outputs[i]->SetTensor(Tensor::Opaque(meta.dtype, meta.shape, device_),
                                /*ready_ns=*/0);
        }
      }
      // The consuming request (if any) is already behind us in the worker
      // queue, so the temp inputs are safe to drop now.
      for (int64_t id : temp_ids) backend->DeleteAsync(id);
    }
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
    if (inflight_ == 0) drained_cv_.notify_all();
  };

  profiler::Scope enqueue_span(profiler::EventKind::kRemoteEnqueue,
                               "remote_enqueue");
  if (enqueue_span.active()) {
    enqueue_span.set_detail(profiler::Intern(node.op_name));
  }
  if (node.op_name == "Call") {
    auto fn_attr = node.attrs.find("function");
    if (fn_attr == node.attrs.end() || !fn_attr->second.Is<std::string>()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        --inflight_;
      }
      poison(InvalidArgument("Remote Call without a string 'function' attr"));
      return;
    }
    std::string serialized;
    auto ser_attr = node.attrs.find("serialized_function");
    if (ser_attr != node.attrs.end() && ser_attr->second.Is<std::string>()) {
      serialized = ser_attr->second.Get<std::string>();
    }
    // The dispatch path ships complete inputs (args + captures) from the
    // client's live values, so the worker must not append the serialized
    // bundle's snapshot of the captures.
    backend->RunFunctionAsync(remote->local_device_part(),
                              fn_attr->second.Get<std::string>(), serialized,
                              std::move(input_ids), std::move(output_ids),
                              /*append_captures=*/false, std::move(done));
  } else {
    backend->RunOpAsync(remote->local_device_part(), node.op_name,
                        std::move(input_ids), std::move(node.attrs),
                        std::move(output_ids), std::move(done));
  }
}

void OpQueue::WaitDrained() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] {
    return queue_.empty() && !draining_ && inflight_ == 0;
  });
}

size_t OpQueue::pending_ops() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace tfe
