// OpQueue: one device's in-order asynchronous dispatch queue (paper §5).
//
// Async eager dispatch enqueues each primitive here and returns pending
// TensorHandles immediately; the queue executes ops in submission order on
// the runtime's shared ThreadPool. Drains are continuation-style and never
// block a pool thread: when the front op's inputs include an unresolved
// handle from another device's queue, the drain parks itself on that handle
// (TensorHandle::AndThen) and re-arms when it resolves — so any number of
// queues share a small pool without deadlock.
//
// Virtual-time accounting rides on the queue: an op occupies its device's
// timeline starting no earlier than (a) the host clock at enqueue and (b)
// its inputs' ready times, which models the host racing ahead of device
// work (the overlap behind Figure 3).
#ifndef TFE_RUNTIME_OP_QUEUE_H_
#define TFE_RUNTIME_OP_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ops/attr_value.h"
#include "profiler/profiler.h"
#include "tensor/tensor.h"
#include "tensor/tensor_handle.h"

namespace tfe {

class Device;
class EagerContext;

class OpQueue {
 public:
  // One enqueued primitive: inputs may be pending tensors from any queue;
  // `outputs` are the handles handed to the caller at dispatch time.
  struct Node {
    std::string op_name;
    std::vector<Tensor> inputs;
    AttrMap attrs;
    // Virtual host time when the op was dispatched (earliest device start).
    uint64_t enqueue_host_ns = 0;
    // Profiler wall clock at enqueue; 0 when profiling was off. Feeds the
    // dispatch-to-execute latency histogram.
    uint64_t enqueue_wall_ns = 0;
    // Deterministic RNG stream reserved at enqueue (program order).
    uint64_t rng_stream = 0;
    std::vector<std::shared_ptr<TensorHandle>> outputs;
  };

  OpQueue(EagerContext* ctx, Device* device);

  OpQueue(const OpQueue&) = delete;
  OpQueue& operator=(const OpQueue&) = delete;

  // Never blocks; safe from any thread.
  void Enqueue(Node node);

  // Blocks the calling (user) thread until every enqueued op has retired.
  void WaitDrained();

  size_t pending_ops() const;

 private:
  // Schedules a drain on the pool if one is not already running and work
  // exists. Caller must hold mu_.
  void PumpLocked();
  // Pops and executes ready ops in order; parks on the first unresolved
  // input handle. Runs on a pool thread; never blocks. When the front is a
  // fusable elementwise op, scans ahead over a bounded window and pops the
  // whole DAG segment (see NodeStartsRun/NodeJoinsRun): non-joining nodes
  // are *stepped over* rather than cutting the run, so a stray op
  // interleaved in a diamond no longer ends it. Skipped nodes keep their
  // queue position and cannot feed run members (their handles are
  // unresolved, so the member would fail the join check), while skipped
  // nodes *consuming* member outputs see them resolve when the fused kernel
  // completes — the reordering is observationally equivalent to in-order
  // execution.
  void Drain();
  // Runs one op: propagates poisoned inputs, materializes the rest, executes
  // the kernel, accounts device time, and fulfills the output handles. A
  // unary elementwise op whose input buffer is provably uniquely owned (the
  // same use-count proof ExecuteFused applies to run operands) passes the
  // kernel a "donate" attr and writes its output in place.
  void Execute(Node node);
  // Remote-device variant: ships local inputs to the worker store, passes
  // same-worker inputs by store id, and issues the op over the backend's
  // pending-handle protocol. The worker's completion callback resolves the
  // output handles (to opaque placeholders — values stay remote until read)
  // or poisons them; the RPC is in flight while the drain moves on, tracked
  // by inflight_ so WaitDrained covers it.
  void ExecuteRemote(Node node);

  // Whether `node` can open a fused run: fusion enabled, this is a real
  // (non-accelerator) compute device, the op is an elementwise micro-op or a
  // layout op (Transpose/Reshape/ExpandDims/Squeeze — reductions only
  // *terminate* runs), and every input is an already-resolved, copy-free
  // operand that broadcasts to the node's shape.
  bool NodeStartsRun(const Node& node) const;
  // Whether `node` extends `run`: same dtype as the run and a compatible
  // element count (the run's count, a broadcast scalar, or growing a
  // so-far-scalar run), and each input is either produced by a node already
  // in the run or an external operand passing the NodeStartsRun input
  // checks. A trailing-axes Sum/Mean/Max/Min over an in-run value joins as
  // the run's reduction epilogue and closes it. An unresolved or poisoned
  // external input cuts the run (the node stays queued and the next drain
  // iteration parks or poisons as usual).
  bool NodeJoinsRun(const Node& node, const std::vector<Node>& run) const;
  // Executes a run of >= 2 fused nodes as one FusedElementwise invocation:
  // describes the run to the fused-program cache (which compiles via
  // kernels::CompileFusedRun on a signature miss, deduplicating operands),
  // elides intermediates nobody outside the run can observe, schedules one
  // span of device time, and fulfills every run handle at the same
  // completion time. Falls back to per-node Execute() on any surprise,
  // including patterns the compiler rejects (conflicting layouts).
  void ExecuteFused(std::vector<Node> run);

  EagerContext* const ctx_;
  Device* const device_;

  // Observability instruments, resolved once (metric pointers are
  // process-lifetime stable; see profiler/metrics.h).
  profiler::Counter* const enqueued_counter_;
  profiler::Gauge* const depth_gauge_;
  profiler::Histogram* const run_length_hist_;
  profiler::Histogram* const dispatch_latency_hist_;
  const uint32_t drain_name_id_;
  const uint32_t fusion_name_id_;

  mutable std::mutex mu_;
  std::condition_variable drained_cv_;
  std::deque<Node> queue_;
  bool draining_ = false;
  // Waiting on a cross-device input handle; its AndThen callback un-parks.
  bool parked_ = false;
  // Remote RPCs issued but not yet resolved by their worker callback. Part
  // of the WaitDrained predicate: a drained remote queue means every op's
  // outputs have been resolved (or poisoned), not merely sent.
  int inflight_ = 0;
};

}  // namespace tfe

#endif  // TFE_RUNTIME_OP_QUEUE_H_
