#include "runtime/dispatch.h"

#include "autodiff/tape.h"
#include "profiler/profiler.h"
#include "runtime/eager_context.h"
#include "staging/trace_context.h"
#include "support/strings.h"

namespace tfe {

StatusOr<std::vector<Tensor>> Dispatch(OpCall call) {
  static profiler::Counter* dispatch_ops =
      profiler::Metrics().GetCounter("dispatch.ops");
  dispatch_ops->Increment();
  profiler::Scope dispatch_span(profiler::EventKind::kDispatch, call.op_name);

  EagerContext* ctx = call.ctx != nullptr ? call.ctx : EagerContext::Global();
  TraceContext* trace = TraceContext::Current();

  std::vector<Tensor> outputs;
  if (trace != nullptr) {
    // Staging: record the op; non-primitive work (shape inference) happens
    // now, kernels at graph-execution time. The Call op's output signature
    // comes from the callee graph function, not a shape function.
    std::vector<TypeAndShape> pre_inferred;
    auto function_outputs = [&](const char* attr) -> Status {
      auto name_it = call.attrs.find(attr);
      if (name_it == call.attrs.end() || !name_it->second.Is<std::string>()) {
        return InvalidArgument(call.op_name + " op requires a '" +
                               std::string(attr) + "' attr");
      }
      TFE_ASSIGN_OR_RETURN(
          std::shared_ptr<GraphFunction> callee,
          ctx->functions().Find(name_it->second.Get<std::string>()));
      for (int i = 0; i < callee->num_outputs(); ++i) {
        pre_inferred.push_back(callee->output_type(i));
      }
      return Status::OK();
    };
    // Ops carrying an explicit declared signature (num_declared_outputs +
    // out_dtype_i/out_shape_i attrs) bypass the library lookup — this is how
    // a recursive function's body records a Call to itself before the callee
    // finishes registering, and how WhileGrad declares its var + capture
    // gradient outputs.
    auto declared_outputs = [&]() -> StatusOr<bool> {
      auto n = call.attrs.find("num_declared_outputs");
      if (n == call.attrs.end() || !n->second.Is<int64_t>()) return false;
      for (int64_t i = 0; i < n->second.Get<int64_t>(); ++i) {
        auto dt = call.attrs.find(strings::StrCat("out_dtype_", i));
        auto sh = call.attrs.find(strings::StrCat("out_shape_", i));
        if (dt == call.attrs.end() || !dt->second.Is<DType>() ||
            sh == call.attrs.end() || !sh->second.Is<Shape>()) {
          return InvalidArgument(call.op_name +
                                 " is missing a declared output dtype/shape");
        }
        pre_inferred.push_back(
            {dt->second.Get<DType>(), sh->second.Get<Shape>()});
      }
      return true;
    };
    if (call.op_name == "Call") {
      TFE_ASSIGN_OR_RETURN(bool declared, declared_outputs());
      if (!declared) TFE_RETURN_IF_ERROR(function_outputs("function"));
    } else if (call.op_name == "WhileGrad") {
      TFE_ASSIGN_OR_RETURN(bool declared, declared_outputs());
      if (!declared) {
        return InvalidArgument("WhileGrad requires declared output types");
      }
    } else if (call.op_name == "Cond") {
      // Branch output signatures agree (validated at construction).
      TFE_RETURN_IF_ERROR(function_outputs("then_function"));
    } else if (call.op_name == "While") {
      // Loop-invariant: outputs have the loop variables' types.
      auto vars_it = call.attrs.find("num_vars");
      if (vars_it == call.attrs.end() || !vars_it->second.Is<int64_t>()) {
        return InvalidArgument("While op requires a 'num_vars' attr");
      }
      for (int64_t i = 0; i < vars_it->second.Get<int64_t>(); ++i) {
        pre_inferred.push_back(
            {call.inputs.at(i).dtype(), call.inputs.at(i).shape()});
      }
    }
    // Tracing executes the host-language function: recording an op costs a
    // host dispatch just like running it eagerly would (the reason staged
    // loops beat per-iteration re-tracing — one trace, many executions).
    ctx->AdvanceHostNs(ctx->host_profile().per_op_dispatch_ns);
    TFE_ASSIGN_OR_RETURN(outputs,
                         trace->RecordOp(call.op_name, call.inputs, call.attrs,
                                         call.device,
                                         std::move(pre_inferred)));
  } else {
    TFE_ASSIGN_OR_RETURN(outputs, ctx->RunPrimitive(call.op_name, call.inputs,
                                                    call.attrs, call.device));
  }

  // Offer to the gradient tapes. One exception: an *eagerly executed*
  // HostFunc runs its callback through this dispatcher, so the callback's
  // primitive ops were already recorded; recording the HostFunc itself would
  // double-count (paper §4.7: "when executing in imperative mode, wrapping a
  // Python function in a py_func has essentially no effect").
  //
  // Buffer donation leans on this call happening at *dispatch* time: an
  // active tape's TapeEntry keeps whole input/output Tensors (not ids), so
  // by the time the op-queue drain weighs donating a buffer, anything the
  // tape will ever need already holds extra state/handle references and
  // fails the drain's exclusivity counts. Recording must never be deferred
  // past enqueue, and TapeEntry must never be weakened to id-only, or
  // fused runs would overwrite buffers the backward pass still reads.
  if (!(trace == nullptr && call.op_name == "HostFunc")) {
    GradientTape::RecordOperation(call.op_name, call.attrs, call.inputs,
                                  outputs, call.device);
  }
  return outputs;
}

StatusOr<Tensor> DispatchSingle(OpCall call) {
  std::string op_name = call.op_name;
  TFE_ASSIGN_OR_RETURN(std::vector<Tensor> outputs, Dispatch(std::move(call)));
  if (outputs.size() != 1) {
    return Internal(strings::StrCat("Op ", op_name, " produced ",
                                    outputs.size(),
                                    " outputs; expected exactly 1"));
  }
  return outputs[0];
}

}  // namespace tfe
