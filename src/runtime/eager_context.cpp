#include "runtime/eager_context.h"

#include <chrono>
#include <thread>

#include "device/remote_device.h"
#include "executor/executor.h"
#include "graph/serialization.h"
#include "ops/op_registry.h"
#include "profiler/profiler.h"
#include "runtime/op_queue.h"
#include "support/strings.h"
#include "tensor/tensor_handle.h"

namespace tfe {

namespace {

// Ops that must really execute even on timing-only simulated devices:
// function calls drive the executor, host funcs run imperative callbacks,
// and state ops maintain variable/checkpoint contents.
bool AlwaysExecutes(const std::string& op_name) {
  return op_name == "Call" || op_name == "HostFunc" ||
         op_name == "ReadVariableOp" || op_name == "AssignVariableOp" ||
         op_name == "AssignAddVariableOp" || op_name == "AssignSubVariableOp" ||
         op_name == "SaveTensor" || op_name == "RestoreTensor" ||
         op_name == "IteratorNext" || op_name == "HashTableInsert" ||
         op_name == "HashTableLookup" || op_name == "HashTableSize" ||
         op_name == "Cond" || op_name == "While" || op_name == "NoOp";
}

bool IsVariableOp(const std::string& op_name) {
  return op_name == "ReadVariableOp" || op_name == "AssignVariableOp" ||
         op_name == "AssignAddVariableOp" || op_name == "AssignSubVariableOp";
}

// Host<->accelerator interconnect bandwidth (PCIe-3 x16 class).
constexpr double kTransferBytesPerSecond = 12e9;

uint64_t NowWallNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::unique_ptr<EagerContext>& GlobalSlot() {
  static std::unique_ptr<EagerContext> context;
  return context;
}

std::mutex& GlobalMu() {
  static std::mutex mu;
  return mu;
}

}  // namespace

EagerContext::EagerContext() : EagerContext(Options()) {}

EagerContext::EagerContext(const Options& options)
    : fuse_elementwise_(options.fuse_elementwise),
      intra_op_parallelism_(options.intra_op_parallelism),
      buffer_donation_(options.buffer_donation),
      host_profile_(options.host_profile),
      rng_(options.random_seed, /*stream=*/0x7465666f),
      random_seed_(options.random_seed),
      async_(options.async) {
  // TFE_PROFILE=<path> turns collection on for the process and registers the
  // at-exit Chrome-trace export.
  profiler::InitFromEnv();
  EnsureOpsRegistered();
  // Paper §4.4: "During program startup, the runtime detects the devices
  // that are available to the machine."
  host_cpu_ = devices_.AddDevice(MakeCpuDevice()).value();
  if (options.register_sim_gpu) {
    devices_
        .AddDevice(MakeSimGpuDevice(0, options.accelerators_execute_kernels))
        .value();
  }
  if (options.register_sim_tpu) {
    devices_
        .AddDevice(MakeSimTpuDevice(0, options.accelerators_execute_kernels))
        .value();
  }
  int threads = options.executor_threads;
  if (threads <= 0) {
    threads = std::max(2u, std::thread::hardware_concurrency());
  }
  executor_pool_ = std::make_unique<ThreadPool>("tfe_executor", threads);
  intraop_pool_ = std::make_unique<ThreadPool>("tfe_intraop", threads);
}

EagerContext::~EagerContext() {
  // In-flight async ops reference devices and the pool; retire them before
  // members start tearing down.
  WaitQueuesDrained();
}

EagerContext* EagerContext::Global() {
  std::lock_guard<std::mutex> lock(GlobalMu());
  if (GlobalSlot() == nullptr) {
    GlobalSlot() = std::make_unique<EagerContext>(Options());
  }
  return GlobalSlot().get();
}

void EagerContext::ResetGlobal(const Options& options) {
  std::lock_guard<std::mutex> lock(GlobalMu());
  // Tensors created under the previous context hold device tags owned by it;
  // callers must not keep tensors across a reset.
  GlobalSlot() = std::make_unique<EagerContext>(options);
}

StatusOr<Device*> EagerContext::ResolveDevice(
    const std::string& op_name, const std::vector<Tensor>& inputs,
    const std::string& requested_device) {
  // Variable ops execute where the variable's storage lives (paper §4.4).
  if (IsVariableOp(op_name) && !inputs.empty() && inputs[0].defined() &&
      inputs[0].is_resource() && inputs[0].device() != nullptr) {
    return inputs[0].device();
  }
  std::string request = requested_device;
  if (request.empty()) request = DeviceScope::Current();
  if (!request.empty()) {
    TFE_ASSIGN_OR_RETURN(Device * device, devices_.FindDevice(request));
    if (!AlwaysExecutes(op_name) && op_name != "Const" &&
        !KernelRegistry::Global()->HasKernel(op_name, device->kind())) {
      return InvalidArgument(strings::StrCat(
          "Op ", op_name, " was explicitly placed on ", device->name(),
          " but has no kernel for that device"));
    }
    return device;
  }
  // Results of remote ops stay remote (paper §4.5): an unscoped op follows
  // its first remote input to that worker instead of fetching the value —
  // the same data-attraction rule as accelerators below, minus the kernel
  // check (the worker resolves kernels on its side).
  for (const Tensor& input : inputs) {
    if (!input.defined() || input.is_symbolic()) continue;
    Device* device = input.device();
    if (device != nullptr && device->IsRemote()) return device;
  }
  // Unspecified: prefer the device of the first accelerator-resident input
  // if a kernel is available there — "the runtime is able to select a device
  // based on the availability of kernels" (paper §4.4).
  for (const Tensor& input : inputs) {
    if (!input.defined() || input.is_symbolic()) continue;
    Device* device = input.device();
    if (device != nullptr && device->is_accelerator() &&
        KernelRegistry::Global()->HasKernel(op_name, device->kind())) {
      return device;
    }
  }
  return host_cpu_;
}

StatusOr<Tensor> EagerContext::CopyToDevice(const Tensor& tensor,
                                            Device* device) {
  TFE_CHECK(device != nullptr);
  if (!tensor.defined() || tensor.is_symbolic()) {
    return Internal("CopyToDevice on non-concrete tensor");
  }
  if (tensor.is_resource()) return tensor;  // resources never move
  Device* src = tensor.device() != nullptr ? tensor.device() : host_cpu_;
  if (src == device) return tensor;

  stats_.device_copies.fetch_add(1, std::memory_order_relaxed);
  // Copying out of an asynchronous device requires it to drain first — this
  // is the implicit synchronization a `.numpy()` / `.cpu()` call performs.
  if (!src->synchronous()) RaiseHostNs(src->timeline().free_at_ns());
  if (src->is_accelerator() || device->is_accelerator()) {
    AdvanceHostNs(TransferTimeNs(tensor.num_elements() *
                                 static_cast<int64_t>(DTypeSize(tensor.dtype()))));
  }
  if (tensor.is_opaque()) {
    return Tensor::Opaque(tensor.dtype(), tensor.shape(), device);
  }
  // All storage is host memory; a cross-device copy re-tags the (immutable)
  // buffer under a fresh tensor identity.
  return Tensor::Concrete(tensor.dtype(), tensor.shape(), tensor.buffer(),
                          device);
}

StatusOr<Tensor> EagerContext::CopyTo(const Tensor& tensor, Device* device) {
  TFE_CHECK(device != nullptr);
  if (!tensor.defined() || tensor.is_symbolic()) {
    return InvalidArgument("copy_to requires a concrete tensor");
  }
  if (tensor.is_resource()) {
    return InvalidArgument(
        "copy_to cannot move a resource handle; variables are pinned to "
        "their device");
  }
  const auto& handle = tensor.pending_handle();
  const TensorHandle::RemoteInfo* rinfo =
      handle != nullptr ? handle->remote_info() : nullptr;
  if (rinfo != nullptr && rinfo->device == device) return tensor;  // no-op

  // Reading the value is the first half of any move: it waits out async
  // producers, surfaces a poisoned source's original status, and fetches a
  // remote source from its worker store (copy-on-read).
  TFE_RETURN_IF_ERROR(tensor.Materialize());
  const Tensor& value = handle != nullptr ? handle->tensor() : tensor;

  if (!device->IsRemote()) {
    return CopyToDevice(value, device);
  }
  if (value.is_opaque()) {
    return InvalidArgument(strings::StrCat(
        "copy_to(", device->name(),
        "): source is an opaque placeholder with no host bytes to ship"));
  }
  // Remote target: ship the value into the target worker's store and hand
  // back a handle referencing it there, exactly as if an op on that worker
  // had produced it.
  auto* remote = static_cast<RemoteDevice*>(device);
  const std::shared_ptr<RemoteBackend>& backend = remote->shared_backend();
  const int64_t id = backend->AllocateHandleId();
  TFE_RETURN_IF_ERROR(backend->Put(value, id));
  stats_.device_copies.fetch_add(1, std::memory_order_relaxed);
  TensorHandle::RemoteInfo info;
  info.device = device;
  info.handle_id = id;
  info.fetch = [backend, id] { return backend->Fetch(id); };
  info.release = [backend, id] { backend->DeleteAsync(id); };
  auto out = TensorHandle::PendingRemote(value.dtype(), value.shape(),
                                         std::move(info), &host_now_ns_);
  out->SetTensor(Tensor::Opaque(value.dtype(), value.shape(), device),
                 /*ready_ns=*/0);
  return Tensor::FromHandle(std::move(out));
}

StatusOr<EagerContext::KernelRun> EagerContext::ExecuteKernel(
    const std::string& op_name, const std::vector<Tensor>& inputs,
    const AttrMap& attrs, Device* device, bool compiled, uint64_t start_ns,
    uint64_t rng_stream) {
  KernelRun run;
  if (device->IsRemote()) {
    return Internal(strings::StrCat(
        "ExecuteKernel invoked for remote device ", device->name(),
        "; remote ops must flow through the dispatch path"));
  }
  const bool execute = device->executes_kernels() || AlwaysExecutes(op_name);
  // An opaque input forces simulation regardless: there are no values to
  // compute with (state ops handle opacity themselves).
  bool opaque_inputs = false;
  for (const Tensor& input : inputs) {
    if (input.defined() && input.is_opaque()) opaque_inputs = true;
  }

  std::vector<Shape> input_shapes;
  input_shapes.reserve(inputs.size());
  for (const Tensor& input : inputs) {
    if (input.defined() && !input.is_resource()) {
      input_shapes.push_back(input.shape());
    }
  }

  if (execute && (!opaque_inputs || AlwaysExecutes(op_name))) {
    TFE_ASSIGN_OR_RETURN(
        const KernelFn* kernel,
        KernelRegistry::Global()->LookUp(op_name, device->kind()));
    KernelContext ctx(this, device, inputs, &attrs);
    ctx.set_start_ns(start_ns);
    ctx.set_compiled(compiled);
    ctx.set_rng_stream(rng_stream);
    uint64_t wall_begin = NowWallNs();
    TFE_RETURN_IF_ERROR((*kernel)(&ctx));
    uint64_t wall_ns = NowWallNs() - wall_begin;
    run.outputs = ctx.ConsumeOutputs();
    if (ctx.completion_ns() != 0) {
      // Composite kernel accounted its own device time.
      run.completion_ns = ctx.completion_ns();
      run.device_ns = 0;
      return run;
    }
    if (device->is_accelerator()) {
      std::vector<Shape> output_shapes;
      for (const Tensor& output : run.outputs) {
        if (output.defined() && !output.is_resource()) {
          output_shapes.push_back(output.shape());
        }
      }
      OpCost cost = EstimateOpCost(op_name, input_shapes, output_shapes,
                                   DTypeSize(inputs.empty()
                                                 ? DType::kFloat32
                                                 : inputs[0].dtype()));
      run.device_ns = KernelTimeNs(cost, device->cost_params(), compiled);
    } else {
      run.device_ns = wall_ns;  // CPU: measured, not modelled
    }
    return run;
  }

  // Simulation-only path: infer output shapes, produce opaque tensors,
  // charge modelled time.
  TFE_ASSIGN_OR_RETURN(const OpDef* def, OpRegistry::Global()->LookUp(op_name));
  std::vector<TypeAndShape> input_types;
  input_types.reserve(inputs.size());
  for (const Tensor& input : inputs) {
    input_types.push_back({input.dtype(), input.shape()});
  }
  InferenceContext infer(std::move(input_types), &attrs);
  TFE_RETURN_IF_ERROR(def->shape_fn(&infer));
  std::vector<Shape> output_shapes;
  for (const TypeAndShape& out : infer.outputs()) {
    if (!out.shape.IsFullyDefined()) {
      return Internal(strings::StrCat(
          "Simulated execution of ", op_name,
          " produced a partial output shape: ", out.shape.ToString()));
    }
    run.outputs.push_back(Tensor::Opaque(out.dtype, out.shape, device));
    output_shapes.push_back(out.shape);
  }
  OpCost cost =
      EstimateOpCost(op_name, input_shapes, output_shapes,
                     DTypeSize(inputs.empty() || inputs[0].is_resource()
                                   ? DType::kFloat32
                                   : inputs[0].dtype()));
  run.device_ns = KernelTimeNs(cost, device->cost_params(), compiled);
  return run;
}

StatusOr<std::vector<Tensor>> EagerContext::RunPrimitive(
    const std::string& op_name, std::vector<Tensor> inputs,
    const AttrMap& attrs, const std::string& requested_device) {
  stats_.eager_ops.fetch_add(1, std::memory_order_relaxed);
  if (IsVariableOp(op_name)) {
    static profiler::Counter* variable_ops =
        profiler::Metrics().GetCounter("dispatch.variable_ops");
    variable_ops->Increment();
    if (profiler::enabled()) {
      profiler::RecordInstant(profiler::EventKind::kVariableOp,
                              profiler::Intern(op_name));
    }
  }
  // Host-language dispatch cost (DESIGN.md §2: calibrated interpreter
  // model; zero under HostProfile::Native).
  AdvanceHostNs(op_name == "Call" ? host_profile_.function_call_ns
                                  : host_profile_.per_op_dispatch_ns);

  for (const Tensor& input : inputs) {
    if (input.defined() && input.is_symbolic()) {
      return InvalidArgument(strings::StrCat(
          "Symbolic tensor passed to eager execution of ", op_name,
          "; symbolic tensors are only usable inside their trace"));
    }
  }

  StatusOr<Device*> device_or = ResolveDevice(op_name, inputs, requested_device);
  if (!device_or.ok()) {
    // An unknown *remote* device name is a deferred failure, not an eager
    // throw: outputs come back poisoned and the error surfaces at the next
    // sync point — the same protocol as a worker dying mid-op (paper §4.5
    // unified with the async error model).
    const std::string& request =
        requested_device.empty() ? DeviceScope::Current() : requested_device;
    StatusOr<DeviceNameParts> parts = ParseDeviceName(request);
    if (parts.ok() && parts->job != "localhost") {
      std::vector<Tensor> poisoned;
      if (DeferRemoteError(op_name, inputs, attrs, device_or.status(),
                           &poisoned)) {
        return poisoned;
      }
    }
    return device_or.status();
  }
  Device* device = *device_or;

  // Remote devices take the pending-handle dispatch path unconditionally —
  // returning immediately is the whole point of forwarding ops instead of
  // round-tripping per call.
  if (device->IsRemote()) {
    return RunRemote(op_name, std::move(inputs), attrs, device);
  }

  // Async fast path (paper §5): enqueue and return pending handles. Variable
  // ops are sequenced through the owning variable's device queue too, so
  // optimizer updates overlap the next step's dispatch instead of acting as
  // sync points; in-order draining keeps assign/read ordering intact. Other
  // composite and stateful ops (AlwaysExecutes) re-enter the runtime or
  // touch shared state, so they stay on the synchronous path.
  if (async()) {
    if (!AlwaysExecutes(op_name) || IsVariableOp(op_name)) {
      std::vector<Tensor> pending;
      if (EnqueueAsync(op_name, inputs, attrs, device, &pending)) {
        return pending;
      }
    }
    // Synchronous stateful ops (Call, SaveTensor, iterator/hash-table ops,
    // or a variable op falling back from EnqueueAsync) may read state the
    // queues are still updating: order them behind every queued op. Executor
    // threads skip the wait — their enclosing Call already drained, and
    // blocking a pool thread here could starve the drains it waits on.
    if (AlwaysExecutes(op_name) && !Executor::InExecutor()) {
      WaitQueuesDrained();
    }
  }

  // Synchronous path. Entering it is a sync point for this op's inputs: wait
  // for pending producers (raising the virtual host clock to their retire
  // time) and surface a poisoned input's original Status here.
  for (Tensor& input : inputs) {
    const auto& handle = input.pending_handle();
    if (handle == nullptr) continue;
    TFE_RETURN_IF_ERROR(handle->WaitReady());
    input = handle->tensor();
  }

  // Transparent input copies (paper §4.4, Listing 5). Tensors with no
  // device tag are host (CPU) memory.
  for (Tensor& input : inputs) {
    if (!input.defined() || input.is_resource() || input.is_symbolic()) {
      continue;
    }
    Device* source = input.device() != nullptr ? input.device() : host_cpu_;
    if (source != device) {
      TFE_ASSIGN_OR_RETURN(input, CopyToDevice(input, device));
    }
  }

  // Simulated-TPU eager mode: each new op signature pays a compile cost
  // before it can run (paper §4.4); the per-device cache makes it one-time.
  if (device->cost_params().per_op_compile_ns > 0 && op_name != "Call") {
    std::string signature = op_name;
    for (const Tensor& input : inputs) {
      if (input.defined() && !input.is_resource()) {
        signature += ";" + input.shape().ToString();
      }
    }
    AdvanceHostNs(device->CompileCostNs(signature));
  }

  TFE_ASSIGN_OR_RETURN(KernelRun run,
                       ExecuteKernel(op_name, inputs, attrs, device,
                                     /*compiled=*/false, host_now_ns(),
                                     NextRngStream()));

  if (run.completion_ns != 0) {
    if (device->synchronous()) RaiseHostNs(run.completion_ns);
  } else if (run.device_ns > 0) {
    uint64_t done = device->timeline().Schedule(host_now_ns(), run.device_ns);
    // Synchronous devices block the host until the kernel retires; the
    // asynchronous GPU stream lets the host race ahead (this overlap is
    // Figure 3's mechanism) — minus a sync fraction modelling the
    // interpreter's imperfect pipelining.
    if (device->synchronous()) {
      RaiseHostNs(done);
    } else if (device->cost_params().eager_host_sync_fraction > 0) {
      AdvanceHostNs(static_cast<uint64_t>(
          device->cost_params().eager_host_sync_fraction *
          static_cast<double>(run.device_ns)));
    }
  }
  return std::move(run.outputs);
}

uint64_t EagerContext::TransferTimeNs(int64_t bytes) {
  return static_cast<uint64_t>(static_cast<double>(bytes) /
                               kTransferBytesPerSecond * 1e9);
}

bool EagerContext::EnqueueAsync(const std::string& op_name,
                                const std::vector<Tensor>& inputs,
                                const AttrMap& attrs, Device* device,
                                std::vector<Tensor>* outputs) {
  // Output metadata must be known at dispatch time; anything shape inference
  // cannot pin down without values falls back to synchronous execution
  // (which also produces the familiar error messages for invalid calls).
  auto def_or = OpRegistry::Global()->LookUp(op_name);
  if (!def_or.ok()) return false;
  std::vector<TypeAndShape> input_types;
  input_types.reserve(inputs.size());
  for (const Tensor& input : inputs) {
    if (!input.defined()) return false;
    input_types.push_back({input.dtype(), input.shape()});
  }
  InferenceContext infer(std::move(input_types), &attrs);
  if (!(*def_or)->shape_fn(&infer).ok()) return false;
  for (const TypeAndShape& out : infer.outputs()) {
    if (!out.shape.IsFullyDefined()) return false;
  }

  OpQueue::Node node;
  node.op_name = op_name;
  node.inputs = inputs;
  node.attrs = attrs;
  node.enqueue_host_ns = host_now_ns();
  // Reserved at enqueue (host program order), not at drain time, so queue
  // interleaving across devices cannot change a random op's stream.
  node.rng_stream = NextRngStream();
  std::vector<Tensor> result;
  result.reserve(infer.outputs().size());
  for (const TypeAndShape& out : infer.outputs()) {
    auto handle =
        TensorHandle::Pending(out.dtype, out.shape, device, &host_now_ns_);
    node.outputs.push_back(handle);
    result.push_back(Tensor::FromHandle(std::move(handle)));
  }
  queue_for(device)->Enqueue(std::move(node));
  *outputs = std::move(result);
  return true;
}

StatusOr<std::vector<Tensor>> EagerContext::RunRemote(
    const std::string& op_name, std::vector<Tensor> inputs,
    const AttrMap& attrs, Device* device) {
  static profiler::Counter* remote_ops =
      profiler::Metrics().GetCounter("dispatch.remote_ops");
  remote_ops->Increment();
  if (op_name == "Call") {
    return RunRemoteCall(std::move(inputs), attrs, device);
  }
  if (AlwaysExecutes(op_name)) {
    return InvalidArgument(strings::StrCat(
        "Op ", op_name, " cannot be dispatched to remote device ",
        device->name(),
        "; only primitive ops and staged function calls execute remotely"));
  }
  for (const Tensor& input : inputs) {
    if (!input.defined()) {
      return InvalidArgument(
          strings::StrCat("Undefined input to remote op ", op_name));
    }
  }
  // Output metadata at dispatch time, mirroring EnqueueAsync; shapes that
  // inference cannot pin down without values fall back to the blocking
  // protocol (correct, just synchronous).
  auto def_or = OpRegistry::Global()->LookUp(op_name);
  if (!def_or.ok()) return def_or.status();
  std::vector<TypeAndShape> input_types;
  input_types.reserve(inputs.size());
  for (const Tensor& input : inputs) {
    input_types.push_back({input.dtype(), input.shape()});
  }
  InferenceContext infer(std::move(input_types), &attrs);
  bool inferable = (*def_or)->shape_fn(&infer).ok();
  if (inferable) {
    for (const TypeAndShape& out : infer.outputs()) {
      if (!out.shape.IsFullyDefined()) inferable = false;
    }
  }
  if (!inferable) {
    return RunRemoteBlocking(op_name, std::move(inputs), attrs, device);
  }
  return EnqueueRemote(op_name, std::move(inputs), attrs, device,
                       infer.outputs());
}

StatusOr<std::vector<Tensor>> EagerContext::RunRemoteCall(
    std::vector<Tensor> inputs, const AttrMap& attrs, Device* device) {
  auto* remote = static_cast<RemoteDevice*>(device);
  auto fn_attr = attrs.find("function");
  if (fn_attr == attrs.end() || !fn_attr->second.Is<std::string>()) {
    return InvalidArgument("Call without a string 'function' attr");
  }
  const std::string& name = fn_attr->second.Get<std::string>();
  TFE_ASSIGN_OR_RETURN(std::shared_ptr<GraphFunction> function,
                       functions_.Find(name));
  AttrMap call_attrs = attrs;
  // Ship-once: serialize the bundle (the callee closure) only the first time
  // this backend sees the name; the worker registers it and every later call
  // is one small request naming the function. Marked only after successful
  // serialization, so a failure here (host funcs, resource captures) stays a
  // clear client-side error and a retry can still ship.
  if (!remote->backend()->FunctionShipped(name)) {
    TFE_ASSIGN_OR_RETURN(std::string serialized,
                         SerializeFunctionBundle(*function, functions_));
    call_attrs.emplace("serialized_function", AttrValue(std::move(serialized)));
    remote->backend()->MarkFunctionShipped(name);
  }
  std::vector<TypeAndShape> output_types;
  bool inferable = true;
  for (int i = 0; i < function->num_outputs(); ++i) {
    TypeAndShape out = function->output_type(i);
    if (!out.shape.IsFullyDefined()) {
      inferable = false;
      break;
    }
    output_types.push_back(std::move(out));
  }
  if (!inferable) {
    return RunRemoteBlocking("Call", std::move(inputs), call_attrs, device);
  }
  return EnqueueRemote("Call", std::move(inputs), std::move(call_attrs),
                       device, output_types);
}

StatusOr<std::vector<Tensor>> EagerContext::EnqueueRemote(
    const std::string& op_name, std::vector<Tensor> inputs, AttrMap attrs,
    Device* device, const std::vector<TypeAndShape>& output_types) {
  auto* remote = static_cast<RemoteDevice*>(device);
  const std::shared_ptr<RemoteBackend>& backend = remote->shared_backend();
  OpQueue::Node node;
  node.op_name = op_name;
  node.inputs = std::move(inputs);
  node.attrs = std::move(attrs);
  node.enqueue_host_ns = host_now_ns();
  node.rng_stream = NextRngStream();
  std::vector<Tensor> result;
  result.reserve(output_types.size());
  for (const TypeAndShape& out : output_types) {
    // The pending-handle protocol: the client pre-assigns the worker-store
    // id each output will live under, so ops dispatched later can reference
    // results that do not exist yet without waiting for this one.
    TensorHandle::RemoteInfo info;
    info.device = device;
    info.handle_id = backend->AllocateHandleId();
    const int64_t id = info.handle_id;
    info.fetch = [backend, id] { return backend->Fetch(id); };
    info.release = [backend, id] { backend->DeleteAsync(id); };
    auto handle = TensorHandle::PendingRemote(out.dtype, out.shape,
                                              std::move(info), &host_now_ns_);
    node.outputs.push_back(handle);
    result.push_back(Tensor::FromHandle(std::move(handle)));
  }
  queue_for(device)->Enqueue(std::move(node));
  return result;
}

StatusOr<std::vector<Tensor>> EagerContext::RunRemoteBlocking(
    const std::string& op_name, std::vector<Tensor> inputs,
    const AttrMap& attrs, Device* device) {
  auto* remote = static_cast<RemoteDevice*>(device);
  const std::shared_ptr<RemoteBackend>& backend = remote->shared_backend();
  // Order behind everything in flight: inputs produced by queued remote ops
  // must exist in the worker store before this request arrives, and handles
  // on other queues must have resolved so their ids (or errors) are visible.
  WaitQueuesDrained();

  std::vector<int64_t> input_ids;
  std::vector<int64_t> temp_ids;
  input_ids.reserve(inputs.size());
  for (Tensor& input : inputs) {
    const auto& handle = input.pending_handle();
    const TensorHandle::RemoteInfo* rinfo =
        handle != nullptr ? handle->remote_info() : nullptr;
    if (rinfo != nullptr) {
      TFE_RETURN_IF_ERROR(handle->status());
      if (static_cast<RemoteDevice*>(rinfo->device)->shared_backend().get() !=
          backend.get()) {
        return InvalidArgument(strings::StrCat(
            "Remote op ", op_name, " on ", device->name(),
            " takes an input living on ", rinfo->device->name(),
            ", a different worker; tensors do not implicitly hop between "
            "workers — move it explicitly with tfe::copy_to"));
      }
      input_ids.push_back(rinfo->handle_id);
      continue;
    }
    if (handle != nullptr) {
      TFE_RETURN_IF_ERROR(handle->WaitReady());
      input = handle->tensor();
    }
    if (!input.defined() || input.is_symbolic() || input.is_resource() ||
        input.is_opaque()) {
      return InvalidArgument(strings::StrCat(
          "Remote op ", op_name,
          " takes an input that is not a concrete value tensor"));
    }
    const int64_t temp_id = backend->AllocateHandleId();
    TFE_RETURN_IF_ERROR(backend->Put(input, temp_id));
    input_ids.push_back(temp_id);
    temp_ids.push_back(temp_id);
  }

  // Worker-assigned output ids (empty output_ids): the reply carries them.
  StatusOr<std::vector<RemoteOutputMeta>> metas =
      Internal("remote call did not complete");
  if (op_name == "Call") {
    auto fn_attr = attrs.find("function");
    TFE_CHECK(fn_attr != attrs.end());
    std::string serialized;
    auto ser_attr = attrs.find("serialized_function");
    if (ser_attr != attrs.end()) {
      serialized = ser_attr->second.Get<std::string>();
    }
    std::mutex done_mu;
    std::condition_variable done_cv;
    bool done = false;
    backend->RunFunctionAsync(
        remote->local_device_part(), fn_attr->second.Get<std::string>(),
        serialized, std::move(input_ids), /*output_ids=*/{},
        /*append_captures=*/false,
        [&](StatusOr<std::vector<RemoteOutputMeta>> reply) {
          std::lock_guard<std::mutex> lock(done_mu);
          metas = std::move(reply);
          done = true;
          done_cv.notify_one();
        });
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return done; });
  } else {
    metas = backend->RunOp(remote->local_device_part(), op_name,
                           std::move(input_ids), attrs, /*output_ids=*/{});
  }
  for (int64_t id : temp_ids) backend->DeleteAsync(id);
  if (!metas.ok()) return metas.status();

  std::vector<Tensor> outputs;
  outputs.reserve(metas->size());
  for (const RemoteOutputMeta& meta : *metas) {
    TensorHandle::RemoteInfo info;
    info.device = device;
    info.handle_id = meta.handle_id;
    const int64_t id = meta.handle_id;
    info.fetch = [backend, id] { return backend->Fetch(id); };
    info.release = [backend, id] { backend->DeleteAsync(id); };
    auto handle = TensorHandle::PendingRemote(meta.dtype, meta.shape,
                                              std::move(info), &host_now_ns_);
    // Already executed: resolve to the opaque placeholder immediately (the
    // value stays remote; the first local read fetches it).
    handle->SetTensor(Tensor::Opaque(meta.dtype, meta.shape, device),
                      /*ready_ns=*/0);
    outputs.push_back(Tensor::FromHandle(std::move(handle)));
  }
  return outputs;
}

bool EagerContext::DeferRemoteError(const std::string& op_name,
                                    const std::vector<Tensor>& inputs,
                                    const AttrMap& attrs, const Status& error,
                                    std::vector<Tensor>* outputs) {
  auto def_or = OpRegistry::Global()->LookUp(op_name);
  if (!def_or.ok()) return false;
  std::vector<TypeAndShape> input_types;
  input_types.reserve(inputs.size());
  for (const Tensor& input : inputs) {
    if (!input.defined()) return false;
    input_types.push_back({input.dtype(), input.shape()});
  }
  InferenceContext infer(std::move(input_types), &attrs);
  if (!(*def_or)->shape_fn(&infer).ok()) return false;
  std::vector<Tensor> result;
  result.reserve(infer.outputs().size());
  for (const TypeAndShape& out : infer.outputs()) {
    // Partial shapes are fine here: the handles only ever report the error.
    auto handle = TensorHandle::Pending(out.dtype, out.shape,
                                        /*device=*/nullptr, &host_now_ns_);
    handle->SetError(error);
    result.push_back(Tensor::FromHandle(std::move(handle)));
  }
  NoteAsyncError(error);
  *outputs = std::move(result);
  return true;
}

OpQueue* EagerContext::queue_for(Device* device) {
  std::lock_guard<std::mutex> lock(queues_mu_);
  std::unique_ptr<OpQueue>& queue = queues_[device];
  if (queue == nullptr) queue = std::make_unique<OpQueue>(this, device);
  return queue.get();
}

void EagerContext::WaitQueuesDrained() {
  std::vector<OpQueue*> queues;
  {
    std::lock_guard<std::mutex> lock(queues_mu_);
    queues.reserve(queues_.size());
    for (auto& entry : queues_) queues.push_back(entry.second.get());
  }
  // Ops only enter queues from dispatching threads, never from other queues,
  // so one pass over a snapshot drains everything in flight.
  for (OpQueue* queue : queues) queue->WaitDrained();
}

void EagerContext::NoteAsyncError(const Status& status) {
  std::lock_guard<std::mutex> lock(async_error_mu_);
  if (async_error_.ok()) async_error_ = status;
}

void EagerContext::set_async(bool async) {
  if (!async) WaitQueuesDrained();
  async_.store(async, std::memory_order_relaxed);
}

Status EagerContext::Sync() {
  WaitQueuesDrained();
  for (Device* device : devices_.ListDevices()) {
    RaiseHostNs(device->timeline().free_at_ns());
  }
  std::lock_guard<std::mutex> lock(async_error_mu_);
  Status first_error = async_error_;
  async_error_ = Status::OK();
  return first_error;
}

void EagerContext::RaiseHostNs(uint64_t ns) {
  uint64_t current = host_now_ns_.load(std::memory_order_relaxed);
  while (current < ns && !host_now_ns_.compare_exchange_weak(
                             current, ns, std::memory_order_relaxed)) {
  }
}

uint64_t EagerContext::SyncAllDevices() {
  WaitQueuesDrained();
  for (Device* device : devices_.ListDevices()) {
    RaiseHostNs(device->timeline().free_at_ns());
  }
  return host_now_ns();
}

void EagerContext::ResetVirtualTime() {
  WaitQueuesDrained();
  host_now_ns_.store(0, std::memory_order_relaxed);
  for (Device* device : devices_.ListDevices()) {
    device->ResetSimulation();
  }
  stats_.eager_ops.store(0);
  stats_.executor_nodes.store(0);
  stats_.function_calls.store(0);
  stats_.traces.store(0);
  stats_.device_copies.store(0);
  stats_.fused_runs.store(0);
  stats_.fused_ops.store(0);
}

// ---- DeviceScope ------------------------------------------------------------

namespace {
thread_local std::vector<std::string> g_device_scope_stack;
const std::string kEmptyDevice;
}  // namespace

DeviceScope::DeviceScope(std::string device_name) {
  g_device_scope_stack.push_back(std::move(device_name));
}

DeviceScope::~DeviceScope() { g_device_scope_stack.pop_back(); }

const std::string& DeviceScope::Current() {
  if (g_device_scope_stack.empty()) return kEmptyDevice;
  return g_device_scope_stack.back();
}

}  // namespace tfe
