#include "state/variable.h"

#include <atomic>

#include "runtime/dispatch.h"
#include "serving/workspace.h"
#include "tensor/tensor_handle.h"
#include "runtime/eager_context.h"
#include "staging/trace_context.h"
#include "support/strings.h"

namespace tfe {

namespace {
std::atomic<int64_t> g_anonymous_variable_counter{0};
}

VariableStorage::VariableStorage(std::string name, DType dtype, Shape shape,
                                 Device* device)
    : name_(std::move(name)),
      dtype_(dtype),
      shape_(std::move(shape)),
      device_(device) {}

Tensor VariableStorage::value() const {
  std::lock_guard<std::mutex> lock(mu_);
  TFE_CHECK(value_.defined()) << "Reading uninitialized variable " << name_;
  return value_;
}

bool VariableStorage::initialized() const {
  std::lock_guard<std::mutex> lock(mu_);
  return value_.defined();
}

Status VariableStorage::Assign(Tensor value) {
  // Variable state is shared and long-lived, so assignment is a sync point
  // for async eager execution: a pending value materializes here, and a
  // poisoned one surfaces its original Status instead of being stored.
  TFE_RETURN_IF_ERROR(value.Materialize());
  if (const auto& handle = value.pending_handle(); handle != nullptr) {
    value = handle->tensor();
  }
  if (value.dtype() != dtype_ || value.shape() != shape_) {
    return InvalidArgument(strings::StrCat(
        "Cannot assign ", DTypeName(value.dtype()), value.shape().ToString(),
        " to variable '", name_, "' of type ", DTypeName(dtype_),
        shape_.ToString()));
  }
  std::lock_guard<std::mutex> lock(mu_);
  value_ = std::move(value);
  return Status::OK();
}

Variable::Variable(const Tensor& initial_value, std::string name) {
  TFE_CHECK(initial_value.defined());
  TFE_CHECK(!initial_value.is_symbolic())
      << "Variables must be initialized with concrete values; compute the "
         "initializer under an init_scope when inside a trace";
  // Workspace resolution (serving/workspace.h): under an active
  // WorkspaceScope a *named* variable resolves against the calling session's
  // workspace — a hit (local or parent-shared) re-binds to the existing
  // storage, leaving its value untouched; a miss creates fresh storage
  // registered in the session's local scope. Anonymous variables and code
  // outside any scope keep the historical fresh-storage-per-construction
  // semantics.
  if (!name.empty()) {
    if (auto workspace = serving::Workspace::Current(); workspace != nullptr) {
      if (auto existing = workspace->FindVariable(name);
          existing.has_value()) {
        if (existing->dtype() != initial_value.dtype() ||
            existing->shape() != initial_value.shape()) {
          throw RuntimeError(
              ErrorCode::kInvalidArgument,
              strings::StrCat(
                  "Workspace '", workspace->name(), "' variable '", name,
                  "' is ", DTypeName(existing->dtype()),
                  existing->shape().ToString(), " but was re-created as ",
                  DTypeName(initial_value.dtype()),
                  initial_value.shape().ToString()));
        }
        *this = *existing;
        return;
      }
      Construct(initial_value, name);
      // A racing creator of the same name wins registration; re-bind so both
      // constructors observe the same storage.
      if (!workspace->AddVariable(name, *this).ok()) {
        if (auto winner = workspace->FindVariable(name); winner.has_value()) {
          *this = *winner;
        }
      }
      return;
    }
  }
  Construct(initial_value, name);
}

void Variable::Construct(const Tensor& initial_value, std::string name) {
  // State-creation contract (paper §4.6): a traced function may create
  // variables only during a trace that allows it (its first trace). A user
  // error, so it throws rather than CHECK-failing.
  if (TraceContext* trace = TraceContext::Current(); trace != nullptr) {
    if (!trace->allow_variable_creation()) {
      throw RuntimeError(
          ErrorCode::kFailedPrecondition,
          "tfe::function-decorated callables must create variables only the "
          "first time they are called (paper §4.6, 'State creation')");
    }
    trace->NoteVariableCreated();
  }
  if (name.empty()) {
    name = strings::StrCat(
        "Variable_", g_anonymous_variable_counter.fetch_add(1));
  }
  Device* device = initial_value.device();
  if (device == nullptr) {
    device = EagerContext::Global()->HostCpu();
    if (!DeviceScope::Current().empty()) {
      auto resolved =
          EagerContext::Global()->devices().FindDevice(DeviceScope::Current());
      if (resolved.ok()) device = *resolved;
    }
  }
  storage_ = std::make_shared<VariableStorage>(std::move(name),
                                               initial_value.dtype(),
                                               initial_value.shape(), device);
  // A user error (e.g. a poisoned async initializer), not a runtime bug —
  // throw rather than CHECK-fail.
  storage_->Assign(initial_value).ThrowIfError();
  handle_ = Tensor::MakeResource(storage_, device);
}

const Tensor& Variable::handle() const {
  TFE_CHECK(defined());
  return handle_;
}

Tensor Variable::value() const {
  TFE_CHECK(defined());
  AttrMap attrs;
  attrs["dtype"] = AttrValue(storage_->dtype());
  attrs["shape"] = AttrValue(storage_->shape());
  auto result = DispatchSingle(
      {.op_name = "ReadVariableOp", .inputs = {handle_}, .attrs = attrs});
  result.status().ThrowIfError();
  return std::move(result).value();
}

void Variable::assign(const Tensor& value) const {
  TFE_CHECK(defined());
  Dispatch({.op_name = "AssignVariableOp", .inputs = {handle_, value}})
      .status()
      .ThrowIfError();
}

void Variable::assign_add(const Tensor& delta) const {
  TFE_CHECK(defined());
  Dispatch({.op_name = "AssignAddVariableOp", .inputs = {handle_, delta}})
      .status()
      .ThrowIfError();
}

void Variable::assign_sub(const Tensor& delta) const {
  TFE_CHECK(defined());
  Dispatch({.op_name = "AssignSubVariableOp", .inputs = {handle_, delta}})
      .status()
      .ThrowIfError();
}

}  // namespace tfe
