#include "state/object_graph.h"

#include <functional>
#include <sstream>
#include <unordered_map>

#include "support/strings.h"

namespace tfe {

void Checkpointable::TrackChild(const std::string& name,
                                Checkpointable* child) {
  TFE_CHECK(child != nullptr);
  children_[name] = child;
}

void Checkpointable::TrackVariable(const std::string& name,
                                   Variable variable) {
  TFE_CHECK(variable.defined());
  variables_[name] = std::move(variable);
}

void Checkpointable::TrackState(const std::string& name,
                                SaveableState state) {
  TFE_CHECK(state.save != nullptr && state.restore != nullptr);
  state_[name] = std::move(state);
}

std::string SavedObjectGraph::Serialize() const {
  std::ostringstream out;
  out << "object_graph_v1 " << nodes.size() << "\n";
  for (size_t i = 0; i < nodes.size(); ++i) {
    out << "node " << i << "\n";
    for (const auto& [name, child] : nodes[i].children) {
      out << "child " << name << " " << child << "\n";
    }
    for (const auto& [name, key] : nodes[i].variables) {
      out << "var " << name << " " << key << "\n";
    }
    for (const auto& [name, key] : nodes[i].states) {
      out << "state " << name << " " << key << "\n";
    }
  }
  return out.str();
}

StatusOr<SavedObjectGraph> SavedObjectGraph::Deserialize(
    const std::string& text) {
  std::istringstream in(text);
  std::string token;
  size_t count = 0;
  in >> token >> count;
  if (token != "object_graph_v1") {
    return InvalidArgument("Not an object-graph index file");
  }
  SavedObjectGraph graph;
  graph.nodes.resize(count);
  int current = -1;
  while (in >> token) {
    if (token == "node") {
      in >> current;
      if (current < 0 || current >= static_cast<int>(count)) {
        return InvalidArgument("Corrupt object-graph index: bad node id");
      }
    } else if (token == "child") {
      std::string name;
      int child = -1;
      in >> name >> child;
      if (current < 0 || child < 0 || child >= static_cast<int>(count)) {
        return InvalidArgument("Corrupt object-graph index: bad child");
      }
      graph.nodes[current].children[name] = child;
    } else if (token == "var") {
      std::string name, key;
      in >> name >> key;
      if (current < 0) {
        return InvalidArgument("Corrupt object-graph index: var before node");
      }
      graph.nodes[current].variables[name] = key;
    } else if (token == "state") {
      std::string name, key;
      in >> name >> key;
      if (current < 0) {
        return InvalidArgument(
            "Corrupt object-graph index: state before node");
      }
      graph.nodes[current].states[name] = key;
    } else {
      return InvalidArgument("Corrupt object-graph index: token " + token);
    }
  }
  return graph;
}

SavedObjectGraph BuildObjectGraph(
    const Checkpointable& root,
    std::vector<std::pair<Variable, std::string>>* keys_out,
    std::vector<std::pair<const SaveableState*, std::string>>* state_out) {
  SavedObjectGraph graph;
  std::unordered_map<const Checkpointable*, int> ids;
  std::vector<const Checkpointable*> order;

  // Discovery is DFS in edge-name order, so ids are deterministic and
  // shared objects (diamonds) serialize once.
  std::function<int(const Checkpointable*)> visit =
      [&](const Checkpointable* object) -> int {
    auto it = ids.find(object);
    if (it != ids.end()) return it->second;
    int id = static_cast<int>(graph.nodes.size());
    ids.emplace(object, id);
    graph.nodes.emplace_back();
    for (const auto& [name, variable] : object->tracked_variables()) {
      std::string key = strings::StrCat("node", id, "-", name);
      graph.nodes[id].variables[name] = key;
      if (keys_out != nullptr) keys_out->emplace_back(variable, key);
    }
    for (const auto& [name, state] : object->tracked_state()) {
      std::string key = strings::StrCat("node", id, "-s-", name);
      graph.nodes[id].states[name] = key;
      if (state_out != nullptr) state_out->emplace_back(&state, key);
    }
    // Children may grow graph.nodes; take names first.
    std::vector<std::pair<std::string, Checkpointable*>> children(
        object->children().begin(), object->children().end());
    for (const auto& [name, child] : children) {
      int child_id = visit(child);
      graph.nodes[id].children[name] = child_id;
    }
    return id;
  };
  visit(&root);
  return graph;
}

}  // namespace tfe
