#include "state/hash_table.h"

#include <cstring>

#include "kernels/kernel_util.h"
#include "ops/op_registry.h"
#include "runtime/dispatch.h"
#include "tensor/tensor_util.h"

namespace tfe {

namespace {

size_t RowBytes(DType dtype, const Shape& value_shape) {
  return static_cast<size_t>(value_shape.num_elements()) * DTypeSize(dtype);
}

// Restore delivers keys and values as two separate tensors; the keys are
// stashed per-resource until the values arrive (restore follows tracking
// order, so "keys" lands before "values").
std::mutex g_pending_mu;
Tensor& PendingKeysFor(const void* resource) {
  static auto* pending = new std::map<const void*, Tensor>();
  std::lock_guard<std::mutex> lock(g_pending_mu);
  return (*pending)[resource];
}

}  // namespace

HashTableResource::HashTableResource(DType value_dtype, Shape value_shape)
    : value_dtype_(value_dtype), value_shape_(std::move(value_shape)) {
  TFE_CHECK(value_shape_.IsFullyDefined());
}

Status HashTableResource::Insert(const Tensor& keys, const Tensor& values) {
  if (keys.dtype() != DType::kInt64 || keys.shape().rank() != 1) {
    return InvalidArgument("Hash table keys must be int64 [n]");
  }
  const int64_t n = keys.shape().dim(0);
  std::vector<int64_t> expected_dims = {n};
  for (int64_t d : value_shape_.dims()) expected_dims.push_back(d);
  if (values.dtype() != value_dtype_ ||
      values.shape() != Shape(expected_dims)) {
    return InvalidArgument("Hash table values must be [n, value_shape...]");
  }
  const size_t row_bytes = RowBytes(value_dtype_, value_shape_);
  std::lock_guard<std::mutex> lock(mu_);
  for (int64_t i = 0; i < n; ++i) {
    Tensor row = Tensor::Empty(value_dtype_, value_shape_, values.device());
    std::memcpy(row.raw_mutable_data(),
                static_cast<const char*>(values.raw_data()) + i * row_bytes,
                row_bytes);
    table_[keys.data<int64_t>()[i]] = std::move(row);
  }
  return Status::OK();
}

StatusOr<Tensor> HashTableResource::Lookup(const Tensor& keys,
                                           const Tensor& default_value) {
  if (keys.dtype() != DType::kInt64 || keys.shape().rank() != 1) {
    return InvalidArgument("Hash table keys must be int64 [n]");
  }
  if (default_value.dtype() != value_dtype_ ||
      default_value.shape() != value_shape_) {
    return InvalidArgument("Hash table default value shape mismatch");
  }
  const int64_t n = keys.shape().dim(0);
  std::vector<int64_t> out_dims = {n};
  for (int64_t d : value_shape_.dims()) out_dims.push_back(d);
  Tensor out = Tensor::Empty(value_dtype_, Shape(out_dims), keys.device());
  const size_t row_bytes = RowBytes(value_dtype_, value_shape_);
  std::lock_guard<std::mutex> lock(mu_);
  for (int64_t i = 0; i < n; ++i) {
    auto it = table_.find(keys.data<int64_t>()[i]);
    const void* src =
        it != table_.end() ? it->second.raw_data() : default_value.raw_data();
    std::memcpy(static_cast<char*>(out.raw_mutable_data()) + i * row_bytes,
                src, row_bytes);
  }
  return out;
}

int64_t HashTableResource::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(table_.size());
}

std::pair<Tensor, Tensor> HashTableResource::Export() const {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t n = static_cast<int64_t>(table_.size());
  Tensor keys = Tensor::Empty(DType::kInt64, Shape({n}), nullptr);
  std::vector<int64_t> value_dims = {n};
  for (int64_t d : value_shape_.dims()) value_dims.push_back(d);
  Tensor values = Tensor::Empty(value_dtype_, Shape(value_dims), nullptr);
  const size_t row_bytes = RowBytes(value_dtype_, value_shape_);
  int64_t i = 0;
  for (const auto& [key, row] : table_) {
    keys.mutable_data<int64_t>()[i] = key;
    std::memcpy(static_cast<char*>(values.raw_mutable_data()) + i * row_bytes,
                row.raw_data(), row_bytes);
    ++i;
  }
  return {std::move(keys), std::move(values)};
}

Status HashTableResource::Import(const Tensor& keys, const Tensor& values) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    table_.clear();
  }
  return Insert(keys, values);
}

HashTable::HashTable(DType value_dtype, const Shape& value_shape) {
  resource_ = std::make_shared<HashTableResource>(value_dtype, value_shape);
  handle_ = Tensor::MakeResource(resource_, nullptr);
  // Contents checkpoint through the generic tracked-state mechanism.
  auto resource = resource_;
  TrackState("keys",
             {[resource]() -> StatusOr<Tensor> {
                return resource->Export().first;
              },
              [resource](const Tensor& keys) -> Status {
                PendingKeysFor(resource.get()) = keys;
                return Status::OK();
              }});
  TrackState("values",
             {[resource]() -> StatusOr<Tensor> {
                return resource->Export().second;
              },
              [resource](const Tensor& values) -> Status {
                Tensor keys = PendingKeysFor(resource.get());
                if (!keys.defined()) {
                  return Internal("Hash table values restored before keys");
                }
                Status status = resource->Import(keys, values);
                PendingKeysFor(resource.get()) = Tensor();
                return status;
              }});
}

void HashTable::insert(const Tensor& keys, const Tensor& values) const {
  TFE_CHECK(defined());
  Dispatch({.op_name = "HashTableInsert", .inputs = {handle_, keys, values}})
      .status()
      .ThrowIfError();
}

Tensor HashTable::lookup(const Tensor& keys,
                         const Tensor& default_value) const {
  TFE_CHECK(defined());
  AttrMap attrs;
  attrs["dtype"] = AttrValue(resource_->value_dtype());
  // Output shape: [n, value_shape...]; n comes from the keys at run time,
  // so inference uses the keys' (possibly partial) dim.
  auto result =
      DispatchSingle({.op_name = "HashTableLookup",
                      .inputs = {handle_, keys, default_value},
                      .attrs = std::move(attrs)});
  result.status().ThrowIfError();
  return std::move(result).value();
}

Tensor HashTable::size() const {
  TFE_CHECK(defined());
  auto result = DispatchSingle({.op_name = "HashTableSize",
                                .inputs = {handle_}});
  result.status().ThrowIfError();
  return std::move(result).value();
}

namespace {

StatusOr<HashTableResource*> GetTable(const Tensor& handle) {
  if (!handle.defined() || !handle.is_resource()) {
    return InvalidArgument("Expected a hash-table resource");
  }
  auto* table = dynamic_cast<HashTableResource*>(handle.resource().get());
  if (table == nullptr) return InvalidArgument("Resource is not a hash table");
  return table;
}

Status HashTableInsertKernel(KernelContext* ctx) {
  TFE_ASSIGN_OR_RETURN(HashTableResource * table, GetTable(ctx->input(0)));
  return table->Insert(ctx->input(1), ctx->input(2));
}

Status HashTableLookupKernel(KernelContext* ctx) {
  TFE_ASSIGN_OR_RETURN(HashTableResource * table, GetTable(ctx->input(0)));
  TFE_ASSIGN_OR_RETURN(Tensor out,
                       table->Lookup(ctx->input(1), ctx->input(2)));
  ctx->SetOutput(0, std::move(out));
  return Status::OK();
}

Status HashTableSizeKernel(KernelContext* ctx) {
  TFE_ASSIGN_OR_RETURN(HashTableResource * table, GetTable(ctx->input(0)));
  ctx->SetOutput(0, tensor_util::Scalar<int64_t>(table->size()));
  return Status::OK();
}

}  // namespace

void RegisterHashTableOps() {
  {
    OpDef def;
    def.name = "HashTableInsert";
    def.num_inputs = 3;
    def.is_stateful = true;
    def.differentiable = false;
    def.shape_fn = [](InferenceContext*) { return Status::OK(); };
    TFE_CHECK(OpRegistry::Global()->Register(std::move(def)).ok());
  }
  {
    OpDef def;
    def.name = "HashTableLookup";
    def.num_inputs = 3;  // handle, keys, default
    def.is_stateful = true;
    def.differentiable = false;
    def.shape_fn = [](InferenceContext* ctx) {
      TFE_ASSIGN_OR_RETURN(DType dtype, ctx->GetAttr<DType>("dtype"));
      std::vector<int64_t> dims = {ctx->input_shape(1).rank() == 1
                                       ? ctx->input_shape(1).dims()[0]
                                       : kUnknownDim};
      for (int64_t d : ctx->input_shape(2).dims()) dims.push_back(d);
      ctx->AddOutput(dtype, Shape(std::move(dims)));
      return Status::OK();
    };
    TFE_CHECK(OpRegistry::Global()->Register(std::move(def)).ok());
  }
  {
    OpDef def;
    def.name = "HashTableSize";
    def.num_inputs = 1;
    def.is_stateful = true;
    def.differentiable = false;
    def.shape_fn = [](InferenceContext* ctx) {
      ctx->AddOutput(DType::kInt64, Shape());
      return Status::OK();
    };
    TFE_CHECK(OpRegistry::Global()->Register(std::move(def)).ok());
  }
  kernels::RegisterKernel("HashTableInsert", HashTableInsertKernel);
  kernels::RegisterKernel("HashTableLookup", HashTableLookupKernel);
  kernels::RegisterKernel("HashTableSize", HashTableSizeKernel);
}

}  // namespace tfe
