// The checkpointable object graph (paper §4.3).
//
// "TensorFlow Eager uses a graph-based matching system, where a directed
// graph with named edges between objects is serialized along with the
// program state. On restore, a greedy matching determines a correspondence
// between serialized state and the objects being restored. This matching is
// local: it depends only on the objects being saved and restored."
//
// Checkpointable is the Trackable analog: an object exposes named edges to
// child objects and named variables; Checkpoint (checkpoint.h) serializes
// and greedily matches these graphs.
#ifndef TFE_STATE_OBJECT_GRAPH_H_
#define TFE_STATE_OBJECT_GRAPH_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "state/variable.h"

namespace tfe {

// Non-variable state serialized as a tensor (iterator positions are
// variables already; hash-table contents and "miscellaneous host state"
// use this — paper §4.3: "even miscellaneous [host] state ... can use
// graph-based state matching").
struct SaveableState {
  std::function<StatusOr<Tensor>()> save;
  std::function<Status(const Tensor&)> restore;
};

class Checkpointable {
 public:
  virtual ~Checkpointable() = default;

  // Adds a named edge to a child object (not owned; must outlive uses in
  // save/restore). Re-tracking a name replaces the edge.
  void TrackChild(const std::string& name, Checkpointable* child);
  // Adds a named edge to a variable.
  void TrackVariable(const std::string& name, Variable variable);
  // Adds a named edge to a generic saveable.
  void TrackState(const std::string& name, SaveableState state);

  const std::map<std::string, Checkpointable*>& children() const {
    return children_;
  }
  const std::map<std::string, Variable>& tracked_variables() const {
    return variables_;
  }
  const std::map<std::string, SaveableState>& tracked_state() const {
    return state_;
  }

 private:
  // Ordered maps: serialization order is deterministic.
  std::map<std::string, Checkpointable*> children_;
  std::map<std::string, Variable> variables_;
  std::map<std::string, SaveableState> state_;
};

// The serialized form of an object graph.
struct SavedObjectNode {
  std::map<std::string, int> children;          // edge name -> node id
  std::map<std::string, std::string> variables; // edge name -> tensor key
  std::map<std::string, std::string> states;    // edge name -> tensor key
};

struct SavedObjectGraph {
  std::vector<SavedObjectNode> nodes;  // node 0 is the root

  std::string Serialize() const;
  static StatusOr<SavedObjectGraph> Deserialize(const std::string& text);
};

// Flattens a live object graph into its serialized form; `keys_out`
// receives (variable, tensor key) pairs and `state_out` receives
// (saveable, tensor key) pairs, both in discovery order.
SavedObjectGraph BuildObjectGraph(
    const Checkpointable& root,
    std::vector<std::pair<Variable, std::string>>* keys_out,
    std::vector<std::pair<const SaveableState*, std::string>>* state_out =
        nullptr);

}  // namespace tfe

#endif  // TFE_STATE_OBJECT_GRAPH_H_
