// Variables: mutable program state (paper §4.3).
//
// A Variable is a host-language object with its own unique storage, deleted
// when the last reference dies. Staged computations reference it *by
// identifier* through a resource tensor captured as a function input, so
// graph functions mutate the same storage the imperative code sees (paper
// §4.6, Listing 7). Reading a variable's value automatically watches it on
// all active gradient tapes (§4.3, Listing 2).
//
// Storage mutation is buffer-swap: assign installs a fresh tensor, so
// previously read values are never overwritten behind a reader's back.
#ifndef TFE_STATE_VARIABLE_H_
#define TFE_STATE_VARIABLE_H_

#include <memory>
#include <mutex>
#include <string>

#include "support/status.h"
#include "tensor/tensor.h"

namespace tfe {

class Device;

class VariableStorage : public ResourceBase {
 public:
  VariableStorage(std::string name, DType dtype, Shape shape, Device* device);

  std::string TypeName() const override { return "Variable"; }

  const std::string& name() const { return name_; }
  DType dtype() const { return dtype_; }
  const Shape& shape() const { return shape_; }
  Device* device() const { return device_; }

  // Snapshot of the current value (cheap: shares the immutable buffer).
  Tensor value() const;
  bool initialized() const;

  // Installs `value` as the new contents. Shape/dtype must match.
  Status Assign(Tensor value);

 private:
  std::string name_;
  DType dtype_;
  Shape shape_;
  Device* device_;
  mutable std::mutex mu_;
  Tensor value_;
};

// The user-facing handle; copyable with shared-ownership semantics, like a
// Python variable reference.
class Variable {
 public:
  Variable() = default;
  // Creates a variable initialized to `initial_value` (must be concrete).
  // Under an active trace this enforces the state-creation contract: only a
  // trace that permits variable creation (the first trace of a function)
  // may create variables (paper §4.6, "State creation"). Storage lives
  // outside any graph.
  // Under an active serving::WorkspaceScope, a non-empty `name` resolves
  // against the scope's workspace first: an existing variable of matching
  // dtype/shape is re-bound (its value untouched) and a new one registers in
  // the workspace — per-session state isolation with parent-shared weights.
  explicit Variable(const Tensor& initial_value, std::string name = "");

  bool defined() const { return storage_ != nullptr; }

  // The resource tensor staged computations capture (stable identity).
  const Tensor& handle() const;

  // Dispatches ReadVariableOp: returns the value and auto-watches the
  // variable on active tapes. Usable inside traces.
  Tensor value() const;
  // Alias mirroring `read_value()` in the paper's listings.
  Tensor read_value() const { return value(); }

  void assign(const Tensor& value) const;
  void assign_add(const Tensor& delta) const;
  void assign_sub(const Tensor& delta) const;

  DType dtype() const { return storage_->dtype(); }
  const Shape& shape() const { return storage_->shape(); }
  const std::string& name() const { return storage_->name(); }

  const std::shared_ptr<VariableStorage>& storage() const { return storage_; }

 private:
  // The workspace-blind creation path (fresh storage, creation contract).
  void Construct(const Tensor& initial_value, std::string name);

  std::shared_ptr<VariableStorage> storage_;
  Tensor handle_;
};

}  // namespace tfe

#endif  // TFE_STATE_VARIABLE_H_
