// Checkpoint: save/restore of program state with graph-based matching
// (paper §4.3).
//
// Saving serializes the object graph (named edges) alongside one tensor file
// per variable, each written by a SaveTensor operation; restoring greedily
// matches the saved graph against the live object graph from the root and
// assigns each matched variable from a RestoreTensor operation. Matching is
// local: renaming an unrelated part of the program does not disturb the
// correspondence of the parts being restored.
#ifndef TFE_STATE_CHECKPOINT_H_
#define TFE_STATE_CHECKPOINT_H_

#include <string>

#include "state/object_graph.h"
#include "support/status.h"

namespace tfe {

class Checkpoint : public Checkpointable {
 public:
  Checkpoint() = default;

  struct RestoreReport {
    int restored_variables = 0;
    // Saved entries with no matching live object/variable.
    std::vector<std::string> unmatched_saved;
    // Live variables with no saved value.
    std::vector<std::string> unmatched_live;
  };

  // Writes the checkpoint under directory `prefix`.
  Status Save(const std::string& prefix) const;

  // Greedy graph matching + assignment. Fails only on I/O or assignment
  // errors; partial matches are reported, not fatal (a model that gained a
  // layer since the save restores everything else).
  StatusOr<RestoreReport> Restore(const std::string& prefix);
};

}  // namespace tfe

#endif  // TFE_STATE_CHECKPOINT_H_
