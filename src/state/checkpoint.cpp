#include "state/checkpoint.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "runtime/dispatch.h"
#include "support/strings.h"

namespace tfe {

namespace {
constexpr char kIndexFile[] = "object_graph.index";
}

Status Checkpoint::Save(const std::string& prefix) const {
  std::vector<std::pair<Variable, std::string>> entries;
  std::vector<std::pair<const SaveableState*, std::string>> state_entries;
  SavedObjectGraph graph = BuildObjectGraph(*this, &entries, &state_entries);

  std::error_code ec;
  std::filesystem::create_directories(prefix, ec);
  std::ofstream index(prefix + "/" + kIndexFile);
  if (!index) return Unavailable("Cannot write checkpoint index at " + prefix);
  index << graph.Serialize();
  index.close();
  if (!index) return Unavailable("Checkpoint index write failed");

  for (const auto& [variable, key] : entries) {
    // Saving sends the variable's value to a save operation (paper §4.3).
    AttrMap attrs;
    attrs["prefix"] = AttrValue(prefix);
    attrs["name"] = AttrValue(key);
    TFE_RETURN_IF_ERROR(Dispatch({.op_name = "SaveTensor",
                                  .inputs = {variable.value()},
                                  .attrs = std::move(attrs)})
                            .status());
  }
  for (const auto& [state, key] : state_entries) {
    TFE_ASSIGN_OR_RETURN(Tensor value, state->save());
    AttrMap attrs;
    attrs["prefix"] = AttrValue(prefix);
    attrs["name"] = AttrValue(key);
    TFE_RETURN_IF_ERROR(Dispatch({.op_name = "SaveTensor",
                                  .inputs = {value},
                                  .attrs = std::move(attrs)})
                            .status());
  }
  return Status::OK();
}

StatusOr<Checkpoint::RestoreReport> Checkpoint::Restore(
    const std::string& prefix) {
  std::ifstream index(prefix + "/" + kIndexFile);
  if (!index) return NotFound("No checkpoint index under " + prefix);
  std::stringstream buffer;
  buffer << index.rdbuf();
  TFE_ASSIGN_OR_RETURN(SavedObjectGraph saved,
                       SavedObjectGraph::Deserialize(buffer.str()));
  if (saved.nodes.empty()) return RestoreReport{};

  RestoreReport report;
  // Greedy pairing of (live object, saved node) by edge names, breadth
  // first from the root; each saved node pairs at most once.
  std::vector<std::pair<const Checkpointable*, int>> worklist = {{this, 0}};
  std::unordered_set<const Checkpointable*> visited;
  std::unordered_set<int> saved_visited;

  while (!worklist.empty()) {
    auto [object, node_id] = worklist.back();
    worklist.pop_back();
    if (!visited.insert(object).second) continue;
    saved_visited.insert(node_id);
    const SavedObjectNode& node = saved.nodes[node_id];

    for (const auto& [name, variable] : object->tracked_variables()) {
      auto it = node.variables.find(name);
      if (it == node.variables.end()) {
        report.unmatched_live.push_back(variable.name());
        continue;
      }
      AttrMap attrs;
      attrs["prefix"] = AttrValue(prefix);
      attrs["name"] = AttrValue(it->second);
      attrs["dtype"] = AttrValue(variable.dtype());
      attrs["shape"] = AttrValue(variable.shape());
      // Restoring assigns to the variable from a restore operation (§4.3).
      TFE_ASSIGN_OR_RETURN(Tensor value,
                           DispatchSingle({.op_name = "RestoreTensor",
                                           .attrs = std::move(attrs)}));
      TFE_RETURN_IF_ERROR(
          Dispatch({.op_name = "AssignVariableOp",
                    .inputs = {variable.handle(), value}})
              .status());
      ++report.restored_variables;
    }
    for (const auto& [name, key] : node.variables) {
      if (object->tracked_variables().count(name) == 0) {
        report.unmatched_saved.push_back(key);
      }
    }

    for (const auto& [name, state] : object->tracked_state()) {
      auto it = node.states.find(name);
      if (it == node.states.end()) {
        report.unmatched_live.push_back(name);
        continue;
      }
      AttrMap attrs;
      attrs["prefix"] = AttrValue(prefix);
      attrs["name"] = AttrValue(it->second);
      // dtype/shape attrs are only consulted by shape inference inside
      // traces; the eager kernel reads them from the file itself.
      attrs["dtype"] = AttrValue(DType::kFloat32);
      attrs["shape"] = AttrValue(Shape());
      TFE_ASSIGN_OR_RETURN(Tensor value,
                           DispatchSingle({.op_name = "RestoreTensor",
                                           .attrs = std::move(attrs)}));
      TFE_RETURN_IF_ERROR(state.restore(value));
      ++report.restored_variables;
    }
    for (const auto& [name, key] : node.states) {
      if (object->tracked_state().count(name) == 0) {
        report.unmatched_saved.push_back(key);
      }
    }

    for (const auto& [name, child] : object->children()) {
      auto it = node.children.find(name);
      if (it != node.children.end()) {
        worklist.emplace_back(child, it->second);
      }
    }
    for (const auto& [name, child_id] : node.children) {
      if (object->children().count(name) == 0) {
        // Whole saved subtree is unmatched; report its variables.
        std::vector<int> stack = {child_id};
        std::unordered_set<int> seen;
        while (!stack.empty()) {
          int id = stack.back();
          stack.pop_back();
          if (!seen.insert(id).second) continue;
          for (const auto& [vn, key] : saved.nodes[id].variables) {
            report.unmatched_saved.push_back(key);
          }
          for (const auto& [cn, cid] : saved.nodes[id].children) {
            stack.push_back(cid);
          }
        }
      }
    }
  }
  return report;
}

}  // namespace tfe
