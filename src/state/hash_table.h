// Mutable hash tables: the paper's third kind of program state (§4.3:
// "Examples include an iterator over input data ..., mutable hash tables").
//
// A table maps int64 keys to fixed-shape tensor values. Insert/lookup/size
// are stateful primitive operations, so tables work identically in eager
// and staged computations (the resource handle is captured by reference,
// like a variable). Contents are checkpointable through the generic
// tracked-state mechanism (exported as a keys tensor + a stacked values
// tensor).
#ifndef TFE_STATE_HASH_TABLE_H_
#define TFE_STATE_HASH_TABLE_H_

#include <map>
#include <memory>
#include <mutex>

#include "state/object_graph.h"
#include "state/variable.h"
#include "support/status.h"
#include "tensor/tensor.h"

namespace tfe {

class HashTableResource : public ResourceBase {
 public:
  HashTableResource(DType value_dtype, Shape value_shape);

  std::string TypeName() const override { return "MutableHashTable"; }

  DType value_dtype() const { return value_dtype_; }
  const Shape& value_shape() const { return value_shape_; }

  // keys [n] int64, values [n, value_shape...]; existing keys overwrite.
  Status Insert(const Tensor& keys, const Tensor& values);
  // keys [n] -> [n, value_shape...]; missing keys take `default_value`
  // (shape value_shape).
  StatusOr<Tensor> Lookup(const Tensor& keys, const Tensor& default_value);
  int64_t size() const;

  // Checkpoint export/import: (keys [n], values [n, value_shape...]).
  std::pair<Tensor, Tensor> Export() const;
  Status Import(const Tensor& keys, const Tensor& values);

 private:
  DType value_dtype_;
  Shape value_shape_;
  mutable std::mutex mu_;
  std::map<int64_t, Tensor> table_;  // ordered: deterministic export
};

class HashTable : public Checkpointable {
 public:
  HashTable() = default;
  HashTable(DType value_dtype, const Shape& value_shape);

  bool defined() const { return resource_ != nullptr; }
  const Tensor& handle() const { return handle_; }

  // All three dispatch stateful primitives (trace-friendly).
  void insert(const Tensor& keys, const Tensor& values) const;
  Tensor lookup(const Tensor& keys, const Tensor& default_value) const;
  Tensor size() const;  // int64 scalar

  const std::shared_ptr<HashTableResource>& resource() const {
    return resource_;
  }

 private:
  std::shared_ptr<HashTableResource> resource_;
  Tensor handle_;
};

// Registers the hash-table ops + kernels (called by EnsureOpsRegistered).
void RegisterHashTableOps();

}  // namespace tfe

#endif  // TFE_STATE_HASH_TABLE_H_
